package core

import (
	"errors"
	"testing"
	"time"

	"contory/internal/access"

	"contory/internal/cxt"
	"contory/internal/query"
	"contory/internal/radio"
	"contory/internal/simnet"
)

// TestLossyAdHocProvisioningMakesProgress: the field trials taught the
// paper's authors that clients must cope with radio unreliability; a
// periodic ad hoc query over a 30 %-lossy WiFi link must keep delivering,
// just with gaps.
func TestLossyAdHocProvisioningMakesProgress(t *testing.T) {
	b := newBed(t)
	b.nw.Seed(11)
	b.nw.SetLoss("phone", "peer", radio.MediumWiFi, 0.3)
	b.publishPeerTemp(14.0)
	cli := &testClient{}
	q := query.MustParse("SELECT temperature FROM adHocNetwork(all,1) DURATION 10 min EVERY 15 sec")
	if _, err := b.factory.ProcessCxtQuery(q, cli); err != nil {
		t.Fatal(err)
	}
	b.clk.Advance(10 * time.Minute)
	// 40 rounds at 30 % per-message loss (several messages per round):
	// expect meaningful but partial delivery.
	if len(cli.items) < 5 {
		t.Fatalf("items = %d, provisioning collapsed under loss", len(cli.items))
	}
	if len(cli.items) >= 40 {
		t.Fatalf("items = %d, loss had no effect", len(cli.items))
	}
}

// TestInfraFailureFailsOverAutoQuery: an auto-assigned query served by the
// infrastructure moves to the ad hoc network when UMTS dies.
func TestInfraFailureFailsOverAutoQuery(t *testing.T) {
	b := newBed(t)
	// Only the infrastructure has the data initially; make the peer
	// publish too so the ad hoc path has a source after failover.
	b.store = append(b.store, cxt.Item{Type: cxt.TypeNoise, Value: 40.0, Timestamp: b.clk.Now()})
	cli := &testClient{}
	q := query.MustParse("SELECT noise FROM extInfra DURATION 20 min EVERY 1 min")
	sub, err := b.factory.ProcessCxtQuery(q, cli)
	if err != nil {
		t.Fatal(err)
	}
	b.clk.Advance(3 * time.Minute)
	if len(cli.items) == 0 {
		t.Fatal("no infra deliveries")
	}
	// Explicit FROM extInfra: no failover (single-entry preferences).
	b.nw.FailLink("phone", "infra", radio.MediumUMTS)
	b.clk.Advance(3 * time.Minute)
	if mech, _ := sub.Mechanism(); mech != MechanismInfra {
		t.Fatalf("explicit extInfra query moved to %v", mech)
	}
}

// TestAutoQueryInfraToAdHocFailover: with FROM omitted and no local
// sensor, an auto query lands on ad hoc first; killing WiFi moves it to
// the infrastructure; restoring WiFi moves it back.
func TestAutoQueryInfraToAdHocFailover(t *testing.T) {
	b := newBed(t)
	b.publishPeerTemp(14.0)
	b.store = append(b.store, cxt.Item{Type: cxt.TypeTemperature, Value: 15.0, Timestamp: b.clk.Now()})
	cli := &testClient{}
	q := query.MustParse("SELECT temperature DURATION 30 min EVERY 30 sec")
	sub, err := b.factory.ProcessCxtQuery(q, cli)
	if err != nil {
		t.Fatal(err)
	}
	if mech, _ := sub.Mechanism(); mech != MechanismAdHoc {
		t.Fatalf("initial mechanism = %v", mech)
	}
	b.clk.Advance(2 * time.Minute)
	adhocItems := len(cli.items)
	if adhocItems == 0 {
		t.Fatal("no ad hoc deliveries")
	}

	// WiFi dies mid-flight: the finder timeout reports the failure and
	// the factory reassigns the query to the infrastructure.
	b.nw.FailLink("phone", "peer", radio.MediumWiFi)
	b.clk.Advance(3 * time.Minute)
	if mech, _ := sub.Mechanism(); mech != MechanismInfra {
		t.Fatalf("mechanism after WiFi death = %v, want extInfra", mech)
	}
	// Keep the infra store fresh so deliveries continue.
	b.store = append(b.store, cxt.Item{Type: cxt.TypeTemperature, Value: 16.0, Timestamp: b.clk.Now()})
	b.clk.Advance(2 * time.Minute)
	if len(cli.items) <= adhocItems {
		t.Fatal("no deliveries from the infrastructure after failover")
	}

	// WiFi comes back: a successful ad hoc operation clears the failure
	// and the factory prefers ad hoc again. Recovery detection needs an
	// ad hoc success, which another query triggers.
	b.nw.RestoreLink("phone", "peer", radio.MediumWiFi)
	b.publishPeerTemp(17.0)
	probe := query.MustParse("SELECT temperature FROM adHocNetwork(all,1) DURATION 1 min")
	if _, err := b.factory.ProcessCxtQuery(probe, &testClient{}); err != nil {
		t.Fatal(err)
	}
	b.clk.Advance(2 * time.Minute)
	if mech, _ := sub.Mechanism(); mech != MechanismAdHoc {
		t.Fatalf("mechanism after WiFi recovery = %v, want adHocNetwork", mech)
	}
	if len(b.factory.Switches()) < 2 {
		t.Fatalf("switches = %+v", b.factory.Switches())
	}
}

// TestAllMechanismsUnavailable: a query no mechanism can serve is rejected
// up front with ErrNoMechanism.
func TestAllMechanismsUnavailable(t *testing.T) {
	b := newBed(t)
	// batteryLevel has no integrated sensor registered, and we pin FROM
	// intSensor: unsupported.
	q := query.MustParse("SELECT batteryLevel FROM intSensor DURATION 1 min")
	_, err := b.factory.ProcessCxtQuery(q, &testClient{})
	if !errors.Is(err, ErrNoMechanism) {
		t.Fatalf("err = %v, want ErrNoMechanism", err)
	}
}

// TestGPSFlappingStaysConsistent: rapid GPS up/down cycles must never
// leave the query unassigned or double-assigned.
func TestGPSFlappingStaysConsistent(t *testing.T) {
	b := newBed(t)
	b.peer.WiFi.PublishTag("location", cxt.Item{
		Type: cxt.TypeLocation, Value: cxt.Fix{Lat: 60.17}, Timestamp: b.clk.Now(), Lifetime: time.Hour,
	}, 0)
	cli := &testClient{}
	q := query.MustParse("SELECT location DURATION 1 hour EVERY 5 sec")
	sub, err := b.factory.ProcessCxtQuery(q, cli)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		b.clk.Advance(time.Minute)
		b.gpsDev.SetFailed(true)
		b.clk.Advance(2 * time.Minute)
		b.gpsDev.SetFailed(false)
		b.clk.Advance(2 * time.Minute)
	}
	mech, err := sub.Mechanism()
	if err != nil {
		t.Fatalf("query lost during flapping: %v", err)
	}
	if mech != MechanismLocal && mech != MechanismAdHoc {
		t.Fatalf("mechanism = %v", mech)
	}
	// Exactly one facade serves the query.
	assigned := 0
	for _, m := range []Mechanism{MechanismLocal, MechanismAdHoc, MechanismInfra} {
		for _, qid := range b.factory.Facade(m).Queries() {
			if qid == sub.ID() {
				assigned++
			}
		}
	}
	if assigned != 1 {
		t.Fatalf("query assigned to %d facades", assigned)
	}
	if len(cli.items) == 0 {
		t.Fatal("no deliveries through the flapping")
	}
}

// TestHighSecurityAccessControl: in high-security mode every new external
// context source is admitted or blocked by the application's makeDecision
// callback; blocked sources never reach the client.
func TestHighSecurityAccessControl(t *testing.T) {
	b := newBed(t)
	b.dev.Access.SetMode(access.HighSecurity)
	b.publishPeerTemp(14.0)
	denying := &testClient{decision: false}
	q := query.MustParse("SELECT temperature FROM adHocNetwork(all,1) DURATION 5 min EVERY 20 sec")
	if _, err := b.factory.ProcessCxtQuery(q, denying); err != nil {
		t.Fatal(err)
	}
	b.clk.Advance(2 * time.Minute)
	if len(denying.items) != 0 {
		t.Fatalf("denied source delivered %d items", len(denying.items))
	}

	// A fresh bed with an approving client: items flow, and the decision
	// is remembered (asked once per source).
	b2 := newBed(t)
	b2.dev.Access.SetMode(access.HighSecurity)
	b2.publishPeerTemp(14.0)
	approving := &testClient{decision: true}
	if _, err := b2.factory.ProcessCxtQuery(q.Clone(), approving); err != nil {
		t.Fatal(err)
	}
	b2.clk.Advance(2 * time.Minute)
	if len(approving.items) == 0 {
		t.Fatal("approved source delivered nothing")
	}
	if !b2.dev.Access.Known("adHocNode:peer") {
		t.Fatalf("source not remembered: %v", b2.dev.Access.KnownSources())
	}
}

// TestRegionQueryServedByAdHoc: the other half of the WeatherWatcher
// pattern — when boats are sailing inside the target region, the query is
// answered from the ad hoc network without touching the infrastructure.
func TestRegionQueryServedByAdHoc(t *testing.T) {
	b := newBed(t)
	b.nw.Node("peer").SetPosition(simnet.Position{X: 120, Y: 80})
	b.peer.WiFi.PublishTag("temperature", cxt.Item{
		Type: cxt.TypeTemperature, Value: 13.0, Timestamp: b.clk.Now(), Lifetime: time.Hour,
	}, 0)
	cli := &testClient{}
	q := query.MustParse("SELECT temperature FROM region(100,100,200) DURATION 2 min")
	sub, err := b.factory.ProcessCxtQuery(q, cli)
	if err != nil {
		t.Fatal(err)
	}
	b.clk.Advance(time.Minute)
	if len(cli.items) != 1 || cli.items[0].Value != 13.0 {
		t.Fatalf("items = %+v", cli.items)
	}
	if cli.items[0].Source.Kind != cxt.SourceAdHocNode {
		t.Fatalf("source = %+v, want ad hoc", cli.items[0].Source)
	}
	_ = sub
}

// TestEntityQueryServedByAdHoc: FROM entity(peer) routes straight to the
// named device.
func TestEntityQueryServedByAdHoc(t *testing.T) {
	b := newBed(t)
	b.peer.WiFi.PublishTag("location", cxt.Item{
		Type: cxt.TypeLocation, Value: cxt.Fix{Lat: 60.17}, Timestamp: b.clk.Now(), Lifetime: time.Hour,
	}, 0)
	cli := &testClient{}
	q := query.MustParse("SELECT location FROM entity(peer) DURATION 2 min")
	if _, err := b.factory.ProcessCxtQuery(q, cli); err != nil {
		t.Fatal(err)
	}
	b.clk.Advance(time.Minute)
	if len(cli.items) != 1 {
		t.Fatalf("items = %d", len(cli.items))
	}
	if cli.items[0].Source.Address != "peer" {
		t.Fatalf("source = %+v", cli.items[0].Source)
	}
}
