package core

import (
	"errors"
	"strconv"
	"testing"
	"time"

	"contory/internal/cxt"
	"contory/internal/energy"
	"contory/internal/qos"
	"contory/internal/query"
)

// TestShedVictimSelection is the table-driven regression test for the
// reduceLoad fix: the shed victim is the query with the highest measured
// energy per delivered item, ties break to the oldest submission and then
// to the numerically smallest id — never newest-first, and never by the
// string ordering that ranks "q-9" above "q-10".
func TestShedVictimSelection(t *testing.T) {
	cases := []struct {
		name      string
		delivered []int // per query, in submission order
		want      string
	}{
		{"equal cost ties to oldest, never newest", []int{0, 0, 0}, "q-1"},
		{"highest joules per delivered item wins", []int{3, 0, 1}, "q-2"},
		{"numeric id ordering on full tie",
			[]int{5, 5, 5, 5, 5, 5, 5, 5, 0, 0, 0, 0}, "q-9"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			b := newBed(t)
			start := b.clk.Now()
			clients := make([]*testClient, len(c.delivered))
			for i := range clients {
				clients[i] = &testClient{}
				_, err := b.factory.ProcessCxtQuery(query.MustParse(
					"SELECT location FROM intSensor DURATION 1 hour EVERY 30 min"), clients[i])
				if err != nil {
					t.Fatal(err)
				}
			}
			// Charge measurable energy over every query's lifetime so the
			// joules-per-item division separates the delivery counts.
			b.dev.Node.Timeline().AddWindowAt("test-load", energy.Milliwatts(500), start, 10*time.Second)
			b.clk.Advance(10 * time.Second)
			b.factory.mu.Lock()
			for i, d := range c.delivered {
				b.factory.queries["q-"+strconv.Itoa(i+1)].delivered = d
			}
			b.factory.mu.Unlock()

			b.factory.enforceReduceLoad("test")

			for _, id := range b.factory.ActiveQueries() {
				if id == c.want {
					t.Fatalf("victim %s still active", c.want)
				}
			}
			if got := len(b.factory.ActiveQueries()); got != len(c.delivered)-1 {
				t.Fatalf("%d queries active after shed, want %d", got, len(c.delivered)-1)
			}
			wantIdx := qidNum(c.want) - 1
			if len(clients[wantIdx].errs) == 0 {
				t.Fatal("shed victim's client not informed")
			}
		})
	}
}

// TestQoSDeferAndRelease checks the defer → weighted release path: the
// second submission exceeds the client's burst, parks on MechanismPending,
// and is released into live provisioning once its token is earned.
func TestQoSDeferAndRelease(t *testing.T) {
	b := newBed(t, WithQoS(qos.Config{Enabled: true, Rate: 1, Burst: 1, QueueCap: 10, MaxActive: 4}))
	b.store = append(b.store,
		cxt.Item{Type: cxt.TypeTemperature, Value: 21.0, Timestamp: b.clk.Now(),
			Source: cxt.Source{Kind: cxt.SourceInfrastructure, Address: "infra"}},
		cxt.Item{Type: cxt.TypeHumidity, Value: 40.0, Timestamp: b.clk.Now(),
			Source: cxt.Source{Kind: cxt.SourceInfrastructure, Address: "infra"}},
	)
	c1, c2 := &testClient{decision: true}, &testClient{decision: true}
	if _, err := b.factory.ProcessCxtQuery(
		query.MustParse("SELECT temperature FROM extInfra DURATION 1 min"), c1); err != nil {
		t.Fatal(err)
	}
	sub2, err := b.factory.ProcessCxtQuery(
		query.MustParse("SELECT humidity FROM extInfra DURATION 1 min"), c2)
	if err != nil {
		t.Fatal(err)
	}
	if m, err := sub2.Mechanism(); err != nil || m != MechanismPending {
		t.Fatalf("second burst query on %v (%v), want pending", m, err)
	}
	b.clk.Advance(30 * time.Second)
	if len(c1.items) == 0 {
		t.Fatal("admitted query received nothing")
	}
	if len(c2.items) == 0 {
		t.Fatal("deferred query never released/served")
	}
	reg := b.factory.Metrics().Snapshot()
	counts := map[string]int64{}
	for _, c := range reg.Counters {
		counts[c.Name] = c.Value
	}
	if counts["qos.admitted"] != 1 || counts["qos.deferred"] != 1 || counts["qos.released"] != 1 {
		t.Fatalf("qos counters = admitted %d deferred %d released %d, want 1/1/1",
			counts["qos.admitted"], counts["qos.deferred"], counts["qos.released"])
	}
}

// TestQoSRejectSentinel checks that a full pending queue rejects with the
// matchable sentinel error.
func TestQoSRejectSentinel(t *testing.T) {
	b := newBed(t, WithQoS(qos.Config{Enabled: true, Rate: 1, Burst: 1, QueueCap: 1, MaxActive: 1}))
	b.store = append(b.store, cxt.Item{Type: cxt.TypeTemperature, Value: 21.0,
		Timestamp: b.clk.Now(), Source: cxt.Source{Kind: cxt.SourceInfrastructure, Address: "infra"}})
	cli := &testClient{decision: true}
	q := "SELECT temperature FROM extInfra DURATION 1 min"
	if _, err := b.factory.ProcessCxtQuery(query.MustParse(q), cli); err != nil {
		t.Fatal(err)
	}
	if _, err := b.factory.ProcessCxtQuery(query.MustParse(q), cli); err != nil {
		t.Fatalf("deferred submission errored: %v", err)
	}
	_, err := b.factory.ProcessCxtQuery(query.MustParse(q), cli)
	if !errors.Is(err, qos.ErrRejected) {
		t.Fatalf("queue-full submission = %v, want qos.ErrRejected", err)
	}
}

// TestQoSDegradeToStaleCache checks graceful shedding under queue
// pressure: with the answer cache holding a stale-but-TTL-servable item,
// an overloaded admission degrades to a cache answer instead of queueing
// or rejecting.
func TestQoSDegradeToStaleCache(t *testing.T) {
	b := newBed(t,
		WithAnswerCache(true), WithCacheTTL(10*time.Minute),
		WithQoS(qos.Config{Enabled: true, Rate: 1, Burst: 1, QueueCap: 2, MaxActive: 1}))
	b.dev.Repo.Store(cxt.Item{Type: cxt.TypeTemperature, Value: 19.5,
		Timestamp: b.clk.Now(), Source: cxt.Source{Kind: cxt.SourceInfrastructure, Address: "infra"}})
	b.clk.Advance(30 * time.Second) // stale for FRESHNESS 5s, inside the TTL
	b.store = append(b.store, cxt.Item{Type: cxt.TypeTemperature, Value: 22.0,
		Timestamp: b.clk.Now(), Source: cxt.Source{Kind: cxt.SourceInfrastructure, Address: "infra"}})

	q := "SELECT temperature FROM extInfra FRESHNESS 5 sec DURATION 1 min"
	c1, c2, c3 := &testClient{decision: true}, &testClient{decision: true}, &testClient{decision: true}
	if _, err := b.factory.ProcessCxtQuery(query.MustParse(q), c1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.factory.ProcessCxtQuery(query.MustParse(q), c2); err != nil {
		t.Fatal(err)
	}
	sub3, err := b.factory.ProcessCxtQuery(query.MustParse(q), c3)
	if err != nil {
		t.Fatalf("overloaded degradable submission errored: %v", err)
	}
	st := sub3.Stats()
	if !st.CacheServed {
		t.Fatal("overloaded submission not degraded to cache service")
	}
	b.clk.Advance(10 * time.Millisecond)
	if len(c3.items) != 1 || c3.items[0].Value != 19.5 {
		t.Fatalf("degraded query items = %v, want the stale 19.5 answer", c3.items)
	}
	if v := b.factory.Metrics().Snapshot(); func() int64 {
		for _, c := range v.Counters {
			if c.Name == "qos.degraded" {
				return c.Value
			}
		}
		return 0
	}() != 1 {
		t.Fatal("qos.degraded counter not incremented")
	}
}

// TestQoSShedOnLowPower checks the monitor-fed overload reaction: low
// battery halves the live-slot budget and sheds the costliest queries
// back to it, informing their clients.
func TestQoSShedOnLowPower(t *testing.T) {
	b := newBed(t, WithQoS(qos.Config{Enabled: true, Rate: 100, Burst: 100, QueueCap: 10, MaxActive: 4}))
	clients := make([]*testClient, 4)
	for i := range clients {
		clients[i] = &testClient{}
		if _, err := b.factory.ProcessCxtQuery(query.MustParse(
			"SELECT location FROM intSensor DURATION 1 hour EVERY 1 min"), clients[i]); err != nil {
			t.Fatal(err)
		}
		b.clk.Advance(time.Second)
	}
	if got := len(b.factory.ActiveQueries()); got != 4 {
		t.Fatalf("%d active before low power, want 4", got)
	}
	b.dev.Monitor.SetBattery(0.1)
	if got := len(b.factory.ActiveQueries()); got != 2 {
		t.Fatalf("%d active after low power, want 2 (halved budget)", got)
	}
	// The two oldest (costliest, same delivery count) queries were shed.
	if len(clients[0].errs) == 0 || len(clients[1].errs) == 0 {
		t.Fatal("shed victims' clients not informed")
	}
	remaining := b.factory.ActiveQueries()
	if len(remaining) != 2 || remaining[0] != "q-3" || remaining[1] != "q-4" {
		t.Fatalf("remaining queries %v, want [q-3 q-4]", remaining)
	}
}
