package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"contory/internal/cxt"
	"contory/internal/metrics"
	"contory/internal/provider"
	"contory/internal/query"
	"contory/internal/tracing"
	"contory/internal/vclock"
)

// fakeProvider is a controllable Provider for facade unit tests.
type fakeProvider struct {
	mu      sync.Mutex
	id      string
	q       *query.Query
	started bool
	stopped bool
	updates int
	sink    provider.Sink
	onDone  provider.DoneFunc
}

func (p *fakeProvider) ID() string { return p.id }
func (p *fakeProvider) Query() *query.Query {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.q
}
func (p *fakeProvider) UpdateQuery(q *query.Query) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.q = q
	p.updates++
}
func (p *fakeProvider) Start() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.started = true
	return nil
}
func (p *fakeProvider) Stop() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stopped = true
}
func (p *fakeProvider) Delivered() int { return 0 }

func (p *fakeProvider) emit(it cxt.Item) { p.sink(it) }

// facadeRig builds a Facade with fake providers and recording callbacks.
type facadeRig struct {
	clk       *vclock.Simulator
	fac       *Facade
	providers []*fakeProvider
	delivered map[string][]cxt.Item
	expired   []string
	makeErr   error
}

func newFacadeRig(t *testing.T) *facadeRig {
	t.Helper()
	r := &facadeRig{
		clk:       vclock.NewSimulator(),
		delivered: make(map[string][]cxt.Item),
	}
	r.fac = newFacade(MechanismAdHoc, r.clk,
		func(id string, q *query.Query, sink provider.Sink, onDone provider.DoneFunc, span *tracing.Span) (provider.Provider, error) {
			if r.makeErr != nil {
				return nil, r.makeErr
			}
			p := &fakeProvider{id: id, q: q.Clone(), sink: sink, onDone: onDone}
			r.providers = append(r.providers, p)
			return p, nil
		},
		func(qid string, it cxt.Item) { r.delivered[qid] = append(r.delivered[qid], it) },
		func(ids []string) { r.expired = append(r.expired, ids...) },
		metrics.NewRegistry(), "rig", nil,
	)
	return r
}

func tempQuery(every int) *query.Query {
	return query.MustParse(fmt.Sprintf(
		"SELECT temperature FROM adHocNetwork(all,1) DURATION 1 hour EVERY %d sec", every))
}

func TestFacadeSubmitCreatesAndStarts(t *testing.T) {
	r := newFacadeRig(t)
	if err := r.fac.Submit("q-1", tempQuery(10), true); err != nil {
		t.Fatal(err)
	}
	if len(r.providers) != 1 || !r.providers[0].started {
		t.Fatalf("providers = %+v", r.providers)
	}
	created, merged := r.fac.Stats()
	if created != 1 || merged != 0 {
		t.Fatalf("stats = %d/%d", created, merged)
	}
}

func TestFacadeMergesCompatibleQueries(t *testing.T) {
	r := newFacadeRig(t)
	if err := r.fac.Submit("q-1", tempQuery(30), true); err != nil {
		t.Fatal(err)
	}
	if err := r.fac.Submit("q-2", tempQuery(10), true); err != nil {
		t.Fatal(err)
	}
	if len(r.providers) != 1 {
		t.Fatalf("providers = %d, want 1", len(r.providers))
	}
	// The provider's query took the faster rate.
	if got := r.providers[0].Query().Every; got != 10*time.Second {
		t.Fatalf("merged Every = %v", got)
	}
	if r.providers[0].updates != 1 {
		t.Fatalf("updates = %d", r.providers[0].updates)
	}
}

func TestFacadeMergeDisabled(t *testing.T) {
	r := newFacadeRig(t)
	if err := r.fac.Submit("q-1", tempQuery(30), false); err != nil {
		t.Fatal(err)
	}
	if err := r.fac.Submit("q-2", tempQuery(10), false); err != nil {
		t.Fatal(err)
	}
	if len(r.providers) != 2 {
		t.Fatalf("providers = %d, want 2", len(r.providers))
	}
}

func TestFacadePostExtraction(t *testing.T) {
	r := newFacadeRig(t)
	strict := query.MustParse("SELECT temperature FROM adHocNetwork(all,1) WHERE accuracy<=0.2 DURATION 1 hour EVERY 10 sec")
	loose := query.MustParse("SELECT temperature FROM adHocNetwork(all,1) WHERE accuracy<=0.9 DURATION 1 hour EVERY 10 sec")
	if err := r.fac.Submit("q-strict", strict, true); err != nil {
		t.Fatal(err)
	}
	if err := r.fac.Submit("q-loose", loose, true); err != nil {
		t.Fatal(err)
	}
	if len(r.providers) != 1 {
		t.Fatalf("providers = %d", len(r.providers))
	}
	// Emit an item only the loose query accepts.
	r.providers[0].emit(cxt.Item{
		Type: cxt.TypeTemperature, Value: 20.0,
		Timestamp: r.clk.Now(), Meta: cxt.Metadata{Accuracy: 0.5},
	})
	if len(r.delivered["q-strict"]) != 0 {
		t.Fatal("strict query got an item its WHERE rejects")
	}
	if len(r.delivered["q-loose"]) != 1 {
		t.Fatal("loose query missed its item")
	}
	// And one both accept.
	r.providers[0].emit(cxt.Item{
		Type: cxt.TypeTemperature, Value: 21.0,
		Timestamp: r.clk.Now(), Meta: cxt.Metadata{Accuracy: 0.1},
	})
	if len(r.delivered["q-strict"]) != 1 || len(r.delivered["q-loose"]) != 2 {
		t.Fatalf("deliveries = %d/%d", len(r.delivered["q-strict"]), len(r.delivered["q-loose"]))
	}
}

func TestFacadeCancelLastStopsProvider(t *testing.T) {
	r := newFacadeRig(t)
	if err := r.fac.Submit("q-1", tempQuery(10), true); err != nil {
		t.Fatal(err)
	}
	if !r.fac.Cancel("q-1") {
		t.Fatal("Cancel returned false")
	}
	if !r.providers[0].stopped {
		t.Fatal("provider not stopped")
	}
	if r.fac.ActiveProviders() != 0 {
		t.Fatal("provider still managed")
	}
	if r.fac.Cancel("q-1") {
		t.Fatal("double Cancel returned true")
	}
}

func TestFacadeCancelRenarrows(t *testing.T) {
	r := newFacadeRig(t)
	if err := r.fac.Submit("q-fast", tempQuery(10), true); err != nil {
		t.Fatal(err)
	}
	if err := r.fac.Submit("q-slow", tempQuery(60), true); err != nil {
		t.Fatal(err)
	}
	if got := r.providers[0].Query().Every; got != 10*time.Second {
		t.Fatalf("merged Every = %v", got)
	}
	// Cancelling the fast query slows the provider back down.
	if !r.fac.Cancel("q-fast") {
		t.Fatal("cancel failed")
	}
	if got := r.providers[0].Query().Every; got != 60*time.Second {
		t.Fatalf("re-narrowed Every = %v, want 60s", got)
	}
	if r.providers[0].stopped {
		t.Fatal("provider stopped while still serving q-slow")
	}
}

func TestFacadeProviderDoneExpiresAll(t *testing.T) {
	r := newFacadeRig(t)
	if err := r.fac.Submit("q-1", tempQuery(10), true); err != nil {
		t.Fatal(err)
	}
	if err := r.fac.Submit("q-2", tempQuery(30), true); err != nil {
		t.Fatal(err)
	}
	r.providers[0].onDone()
	if len(r.expired) != 2 {
		t.Fatalf("expired = %v", r.expired)
	}
	if r.fac.ActiveProviders() != 0 {
		t.Fatal("provider still managed after done")
	}
	// Emissions after done are dropped.
	r.providers[0].emit(cxt.Item{Type: cxt.TypeTemperature, Timestamp: r.clk.Now()})
	if len(r.delivered["q-1"]) != 0 {
		t.Fatal("delivery after done")
	}
}

func TestFacadeDisabled(t *testing.T) {
	r := newFacadeRig(t)
	r.fac.SetDisabled(true)
	err := r.fac.Submit("q-1", tempQuery(10), true)
	if !errors.Is(err, ErrFacadeDisabled) {
		t.Fatalf("err = %v", err)
	}
	r.fac.SetDisabled(false)
	if err := r.fac.Submit("q-1", tempQuery(10), true); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeMakerError(t *testing.T) {
	r := newFacadeRig(t)
	r.makeErr = errors.New("no radio")
	if err := r.fac.Submit("q-1", tempQuery(10), true); err == nil {
		t.Fatal("Submit with failing maker succeeded")
	}
	if r.fac.ActiveProviders() != 0 {
		t.Fatal("phantom provider left behind")
	}
}

func TestFacadeQueriesAndStopAll(t *testing.T) {
	r := newFacadeRig(t)
	if err := r.fac.Submit("q-b", tempQuery(10), false); err != nil {
		t.Fatal(err)
	}
	if err := r.fac.Submit("q-a", tempQuery(20), false); err != nil {
		t.Fatal(err)
	}
	got := r.fac.Queries()
	if len(got) != 2 || got[0] != "q-a" || got[1] != "q-b" {
		t.Fatalf("Queries = %v", got)
	}
	r.fac.StopAll()
	for _, p := range r.providers {
		if !p.stopped {
			t.Fatal("provider survived StopAll")
		}
	}
	if r.fac.ActiveProviders() != 0 {
		t.Fatal("managed providers survive StopAll")
	}
}

func TestSmallAccessors(t *testing.T) {
	r := newFacadeRig(t)
	if r.fac.Mechanism() != MechanismAdHoc {
		t.Fatalf("Mechanism = %v", r.fac.Mechanism())
	}
}
