package core

import (
	"fmt"

	"contory/internal/audit"
	"contory/internal/tracing"
)

// This file wires the runtime invariant auditor (internal/audit) into the
// ContextFactory: thin taps at every query-lifecycle transition, timer
// arm/stop, item delivery and QoS slot movement, plus the continuous
// cross-checks of the qos-slots law. Every tap is nil-safe, so with
// auditing off (the default) these calls cost one pointer comparison.

// Audit balance names owned by the factory and its facades.
const (
	balQoSSlots   = "qos.slots"   // live-provisioning slots held
	balQoSPending = "qos.pending" // queries parked in the qos queue
)

// WithAudit attaches a runtime invariant auditor to the factory: lifecycle,
// timer, refcount and accounting taps report into it, and the qos-slots
// law is cross-checked continuously. A nil auditor — the default — keeps
// auditing off with zero overhead, since every tap is nil-safe.
func WithAudit(a *audit.Auditor) Option {
	return func(f *Factory) { f.audit = a }
}

// Auditor returns the factory's invariant auditor (nil when auditing is
// off); exposed for harnesses that assert on audit state.
func (f *Factory) Auditor() *audit.Auditor { return f.audit }

// auditTraceRef renders a span's identity for violation reports, matching
// the %016x form of the trace exporters ("" when untraced).
func auditTraceRef(sp *tracing.Span) string {
	sc := sp.Context()
	if sc.Trace == 0 && sc.Span == 0 {
		return ""
	}
	return fmt.Sprintf("%016x/%016x", uint64(sc.Trace), uint64(sc.Span))
}

// auditStarted records a query entering the plane (under any mechanism,
// including cache and pending service).
func (f *Factory) auditStarted(aq *activeQuery) {
	f.audit.QueryStarted(f.clock.Now(), string(f.dev.ID), aq.id, auditTraceRef(aq.span))
}

// auditTimerArmed / auditTimerStopped mirror every vclock timer the
// factory arms on a query; the auditor balances them per (query, kind).
func (f *Factory) auditTimerArmed(queryID, kind string) {
	f.audit.TimerArmed(f.clock.Now(), string(f.dev.ID), queryID, kind)
}

func (f *Factory) auditTimerStopped(queryID, kind string) {
	f.audit.TimerStopped(f.clock.Now(), string(f.dev.ID), queryID, kind)
}

// qosDone hands one live-provisioning slot back to the controller. A
// double release — the controller holding no slot — is surfaced as a
// counter and a strict-mode violation instead of being silently clamped.
func (f *Factory) qosDone(queryID string) {
	if !f.qos.Done() {
		f.instr.qosDoneUnderflow.Inc()
		f.audit.Violate(f.clock.Now(), string(f.dev.ID), queryID, audit.LawSlots,
			"qos slot double-release: Controller.Done() underflow", "")
		return
	}
	f.audit.Add(f.clock.Now(), string(f.dev.ID), balQoSSlots, -1)
}

// qosEnterUnstable / qosExitUnstable bracket every operation that moves
// qos slot or pending accounting (submission, dispatch, shed, degrade,
// teardown). Such operations nest — a synchronous delivery inside a
// release can finish another query — so the continuous qos-slots law is
// only checked when the outermost bracket unwinds, when the accounting is
// consistent again.
func (f *Factory) qosEnterUnstable() {
	if f.audit == nil || f.qos == nil {
		return
	}
	f.mu.Lock()
	f.qosUnstable++
	f.mu.Unlock()
}

func (f *Factory) qosExitUnstable() {
	if f.audit == nil || f.qos == nil {
		return
	}
	f.mu.Lock()
	f.qosUnstable--
	stable := f.qosUnstable == 0
	live := 0
	if stable {
		for _, aq := range f.queries {
			if aq.qosLive {
				live++
			}
		}
	}
	f.mu.Unlock()
	if !stable {
		return
	}
	now := f.clock.Now()
	dev := string(f.dev.ID)
	// Law: controller live slots == queries holding a slot (qosLive). Cache-
	// served, pending and promoted-from-cache queries hold none.
	f.audit.Expect(now, dev, "", audit.LawSlots,
		"controller active slots vs slot-holding queries", int64(f.qos.Active()), int64(live))
	// Law: the per-device pending balance — which moves 1:1 with the gauge —
	// must track Controller.Pending() exactly.
	f.audit.Expect(now, dev, "", audit.LawSlots,
		"qos.pending accounting vs Controller.Pending()",
		f.audit.BalanceValue(dev, balQoSPending), int64(f.qos.Pending()))
}
