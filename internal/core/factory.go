package core

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"contory/internal/access"
	"contory/internal/audit"
	"contory/internal/cxt"
	"contory/internal/metrics"
	"contory/internal/monitor"
	"contory/internal/policy"
	"contory/internal/provider"
	"contory/internal/qos"
	"contory/internal/query"
	"contory/internal/repo"
	"contory/internal/simnet"
	"contory/internal/timeline"
	"contory/internal/tracing"
	"contory/internal/vclock"
)

// Client is the application-side interface of §4.4: applications implement
// it to receive collected context items, error notifications, and access-
// control decisions.
type Client interface {
	// ReceiveCxtItem handles the reception of a collected context item.
	ReceiveCxtItem(item cxt.Item)
	// InformError is called by Contory modules on malfunction or failure.
	InformError(msg string)
	// MakeDecision is invoked by the AccessController to grant or block
	// interaction with an external entity (high-security mode).
	MakeDecision(msg string) bool
}

// Factory errors.
var (
	ErrUnknownQuery    = errors.New("core: unknown query id")
	ErrNoMechanism     = errors.New("core: no provisioning mechanism available for query")
	ErrNotRegistered   = errors.New("core: client is not a registered context server")
	ErrNilClient       = errors.New("core: nil client")
	ErrAlreadyAssigned = errors.New("core: query already assigned")
)

// SwitchEvent records one dynamic strategy switch (Fig. 5).
type SwitchEvent struct {
	At      time.Time
	QueryID string
	From    Mechanism
	To      Mechanism
	Reason  string
}

// InfraOpStoreItem is the infrastructure operation used by storeCxtItem to
// persist complete logs remotely.
const InfraOpStoreItem = "storeCxtItem"

// activeQuery is the QueryManager's record of one submitted query.
type activeQuery struct {
	id     string
	q      *query.Query
	client Client
	// mech is the (primary) serving mechanism; extra lists additional
	// facades the query is simultaneously assigned to (§4.3 permits
	// CxtProviders of different Facades on the same query).
	mech      Mechanism
	extra     []Mechanism
	prefs     []Mechanism
	delivered int
	cacheHits int           // answers served from the answer cache
	cacheTick *vclock.Timer // EVERY-period refresh while cache-served
	// qosLive marks a query occupying a QoS live-provisioning slot;
	// degraded marks one the QoS plane downgraded to stale-cache service
	// (cache lookups then relax the FRESHNESS bound to the type's TTL).
	qosLive   bool
	degraded  bool
	expiry    *vclock.Timer
	probe     *vclock.Timer
	submitted time.Time
	span      *tracing.Span // root span of the query's trace (nil = untraced)
}

// Factory is the ContextFactory (§4.3): the core component instantiated on
// each device and made accessible to multiple applications. It offers the
// interface to submit context queries and lets Facade components decide
// which CxtProvider classes to instantiate (the Factory Method pattern).
type Factory struct {
	dev   *Device
	clock vclock.Clock

	mu         sync.Mutex
	nextID     int
	queries    map[string]*activeQuery
	facades    map[Mechanism]*Facade
	engine     *policy.Engine
	publishers map[Client]bool
	cxtPub     *provider.CxtPublisher
	switches   []SwitchEvent

	mergeEnabled    bool
	failoverEnabled bool
	preferBTOneHop  bool
	cacheEnabled    bool
	cacheTTL        time.Duration
	retry           RetryPolicy
	qosCfg          qos.Config
	qos             *qos.Controller
	monCancel       func()
	// qosUnstable (under mu) counts nested operations currently moving qos
	// slot/pending accounting; the audit cross-checks only run when it
	// returns to zero (see qosExitUnstable).
	qosUnstable int

	metrics     *metrics.Registry
	instr       *instruments
	tracer      *tracing.Tracer
	audit       *audit.Auditor
	timelineCfg *timeline.Config
	recorder    *timeline.Recorder
}

// recoveryProbeInterval is how often a failed-over query probes for its
// preferred mechanism's return: BT discovery for a lost GPS device (the
// Fig. 5 power bumps of 163–292 mW are dominated by these discoveries), a
// one-hop finder for a lost ad hoc network.
const recoveryProbeInterval = 30 * time.Second

// NewFactory wires a ContextFactory onto a device. Behaviour toggles and
// the metrics registry are supplied as functional options:
//
//	core.NewFactory(dev, core.WithMerging(false), core.WithMetrics(reg))
//
// Without WithMetrics the factory instruments into a private registry,
// available via Metrics().
func NewFactory(dev *Device, opts ...Option) *Factory {
	f := &Factory{
		dev:             dev,
		clock:           dev.Clock,
		queries:         make(map[string]*activeQuery),
		facades:         make(map[Mechanism]*Facade),
		engine:          policy.NewEngine(),
		publishers:      make(map[Client]bool),
		mergeEnabled:    true,
		failoverEnabled: true,
		retry:           DefaultRetryPolicy,
	}
	for _, opt := range opts {
		if opt != nil {
			opt(f)
		}
	}
	if f.metrics == nil {
		f.metrics = metrics.NewRegistry()
	}
	f.instr = newInstruments(f.metrics, string(dev.ID))
	f.facades[MechanismLocal] = newFacade(MechanismLocal, dev.Clock, f.makeLocal, f.deliver, f.onExpire, f.metrics, string(dev.ID), f.audit)
	f.facades[MechanismAdHoc] = newFacade(MechanismAdHoc, dev.Clock, f.makeAdHoc, f.deliver, f.onExpire, f.metrics, string(dev.ID), f.audit)
	f.facades[MechanismInfra] = newFacade(MechanismInfra, dev.Clock, f.makeInfra, f.deliver, f.onExpire, f.metrics, string(dev.ID), f.audit)
	f.cxtPub = provider.NewPublisher(dev.BT, dev.WiFi)
	if f.cacheTTL > 0 {
		dev.Repo.SetDefaultTTL(f.cacheTTL)
	}
	if f.qosCfg.Enabled {
		mon := dev.Monitor
		f.qos = qos.New(dev.Clock, f.qosCfg, func() bool {
			return mon.BatteryLevel() == monitor.LevelLow || mon.MemoryLevel() == monitor.LevelLow
		})
	}
	if f.timelineCfg != nil {
		f.recorder = timeline.New(dev.Clock, f.metrics, *f.timelineCfg)
		f.recorder.Install()
	}
	f.applyRetryPolicy()
	f.engine.SetEnforcer(f.enforce)
	f.monCancel = dev.Monitor.OnEvent(f.onMonitorEvent)
	dev.attachMetrics(f.metrics)
	dev.attachAudit(f.audit)
	if dev.UMTS != nil {
		dev.Repo.SetRemote(remoteStore{f: f})
	}
	return f
}

// Device returns the factory's device.
func (f *Factory) Device() *Device { return f.dev }

// Metrics returns the registry the factory instruments into.
func (f *Factory) Metrics() *metrics.Registry { return f.metrics }

// Timeline returns the factory's flight recorder (WithTimeline), or nil.
func (f *Factory) Timeline() *timeline.Recorder { return f.recorder }

// Facade returns the facade for a mechanism (for experiment harnesses).
func (f *Factory) Facade(m Mechanism) *Facade { return f.facades[m] }

// applyRetryPolicy pushes the factory-wide policy down to the
// per-mechanism references: WiFi gets the retry count, per-attempt timeout
// and backoff; BT bounds its SDP/get exchanges with the policy timeout.
// UMTS requests already carry per-call timeouts chosen by their providers,
// which the policy does not override.
func (f *Factory) applyRetryPolicy() {
	p := f.retry
	if f.dev.WiFi != nil {
		f.dev.WiFi.SetRetryPolicy(p.Attempts-1, p.Timeout, p.Backoff)
	}
	if f.dev.BT != nil && p.Timeout > 0 {
		f.dev.BT.SetRequestTimeout(p.Timeout)
	}
}

// RetryPolicy returns the factory-wide recovery policy set at construction.
func (f *Factory) RetryPolicy() RetryPolicy {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.retry
}

// MergeEnabled reports whether query aggregation is currently on.
func (f *Factory) MergeEnabled() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.mergeEnabled
}

// FailoverEnabled reports whether dynamic strategy switching is on.
func (f *Factory) FailoverEnabled() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.failoverEnabled
}

// Switches returns the strategy-switch log.
func (f *Factory) Switches() []SwitchEvent {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]SwitchEvent, len(f.switches))
	copy(out, f.switches)
	return out
}

// ActiveQueries returns the ids of the active queries, sorted.
func (f *Factory) ActiveQueries() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.queries))
	for id := range f.queries {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// QueryMechanism reports which mechanism currently serves the query.
func (f *Factory) QueryMechanism(queryID string) (Mechanism, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	aq, ok := f.queries[queryID]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownQuery, queryID)
	}
	return aq.mech, nil
}

// ProcessCxtQuery submits a context query on behalf of a client and returns
// a Subscription handle for it. The assignment follows the FROM clause,
// sensor availability and the active control policies (§4.3).
func (f *Factory) ProcessCxtQuery(q *query.Query, client Client) (*Subscription, error) {
	if client == nil {
		return nil, fmt.Errorf("core: process query: %w", ErrNilClient)
	}
	if err := query.Validate(q); err != nil {
		return nil, err
	}
	prefs := f.preferences(q)
	if len(prefs) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNoMechanism, q.From.Kind)
	}
	f.mu.Lock()
	f.nextID++
	id := "q-" + strconv.Itoa(f.nextID)
	aq := &activeQuery{
		id:        id,
		q:         q.Clone(),
		client:    client,
		prefs:     prefs,
		submitted: f.clock.Now(),
	}
	aq.q.ID = id
	mergeOn := f.mergeEnabled
	f.mu.Unlock()
	f.instr.submitted.Inc()
	f.instr.event(aq.submitted, id, metrics.EventSubmitted, "", string(aq.q.Select))
	aq.span = f.tracer.StartRoot(string(f.dev.ID)+"/"+id, string(f.dev.ID), f.dev.Node.Timeline())
	aq.span.SetAttr("select", string(aq.q.Select))
	aq.span.SetAttr("duration", aq.q.Duration.String())

	// Answer cache: when stored context satisfies the query, serve it with
	// zero provider work instead of assigning a mechanism.
	if f.tryServeFromCache(aq) {
		return &Subscription{f: f, id: id}, nil
	}

	// QoS plane: cache misses pass admission control before provisioning
	// live. Only an admit verdict falls through to mechanism assignment.
	if f.qos != nil {
		f.qosEnterUnstable()
		defer f.qosExitUnstable()
		if sub, err, handled := f.qosGate(aq); handled {
			return sub, err
		}
	}

	var lastErr error
	for _, mech := range prefs {
		if !f.mechanismHealthy(mech, aq.q) {
			lastErr = fmt.Errorf("core: %s unavailable", mech)
			continue
		}
		if err := f.facades[mech].submit(id, aq.q, mergeOn, aq.span); err != nil {
			lastErr = err
			continue
		}
		aq.mech = mech
		aq.span.SetAttr("mech", mech.String())
		f.mu.Lock()
		f.queries[id] = aq
		if aq.q.Duration.Time > 0 {
			aq.expiry = f.clock.After(aq.q.Duration.Time, func() { f.finishQuery(id, metrics.EventExpired) })
		}
		f.mu.Unlock()
		f.auditStarted(aq)
		if aq.expiry != nil {
			f.auditTimerArmed(id, "expiry")
		}
		f.instr.assigned[mech].Inc()
		f.instr.active.Add(1)
		f.instr.event(f.clock.Now(), id, metrics.EventAssigned, mech.String(), "")
		return &Subscription{f: f, id: id}, nil
	}
	if lastErr == nil {
		lastErr = ErrNoMechanism
	}
	f.mu.Lock()
	wasLive := aq.qosLive
	aq.qosLive = false
	f.mu.Unlock()
	if wasLive {
		// Admission succeeded but no mechanism could serve: hand the live
		// slot back so the failure does not leak provisioning capacity.
		f.qosDone(id)
		f.qosDispatch()
	}
	f.instr.rejected.Inc()
	aq.span.SetAttr("error", lastErr.Error())
	aq.span.End()
	return nil, fmt.Errorf("core: assign query: %w", lastErr)
}

// ProcessCxtQueryMulti assigns one query to several provisioning
// mechanisms simultaneously (§4.3: "CxtProviders of different Facades can
// be assigned to the same query"). Applications use this to combine
// results from multiple context sources — typically through a
// CxtAggregator — to relieve the uncertainty of any single source. With no
// explicit mechanisms, every supported one is used. Multi-assigned queries
// do not participate in failover (they are already redundant).
func (f *Factory) ProcessCxtQueryMulti(q *query.Query, client Client, mechs ...Mechanism) (*Subscription, error) {
	if client == nil {
		return nil, fmt.Errorf("core: process multi query: %w", ErrNilClient)
	}
	if err := query.Validate(q); err != nil {
		return nil, err
	}
	if len(mechs) == 0 {
		for _, m := range allMechanisms {
			if f.mechanismSupported(m, q) {
				mechs = append(mechs, m)
			}
		}
	}
	f.mu.Lock()
	f.nextID++
	id := "q-" + strconv.Itoa(f.nextID)
	aq := &activeQuery{
		id:        id,
		q:         q.Clone(),
		client:    client,
		submitted: f.clock.Now(),
	}
	aq.q.ID = id
	mergeOn := f.mergeEnabled
	f.mu.Unlock()
	f.instr.submitted.Inc()
	f.instr.event(aq.submitted, id, metrics.EventSubmitted, "", string(aq.q.Select))
	aq.span = f.tracer.StartRoot(string(f.dev.ID)+"/"+id, string(f.dev.ID), f.dev.Node.Timeline())
	aq.span.SetAttr("select", string(aq.q.Select))
	aq.span.SetAttr("multi", "true")

	var assigned []Mechanism
	var lastErr error
	for _, mech := range mechs {
		if !f.mechanismHealthy(mech, aq.q) {
			lastErr = fmt.Errorf("core: %s unavailable", mech)
			continue
		}
		if err := f.facades[mech].submit(id, aq.q, mergeOn, aq.span); err != nil {
			lastErr = err
			continue
		}
		assigned = append(assigned, mech)
	}
	if len(assigned) == 0 {
		if lastErr == nil {
			lastErr = ErrNoMechanism
		}
		f.instr.rejected.Inc()
		aq.span.SetAttr("error", lastErr.Error())
		aq.span.End()
		return nil, fmt.Errorf("core: assign multi query: %w", lastErr)
	}
	aq.span.SetAttr("mech", assigned[0].String())
	f.mu.Lock()
	aq.mech = assigned[0]
	aq.extra = assigned[1:]
	f.queries[id] = aq
	if aq.q.Duration.Time > 0 {
		aq.expiry = f.clock.After(aq.q.Duration.Time, func() { f.finishQuery(id, metrics.EventExpired) })
	}
	f.mu.Unlock()
	f.auditStarted(aq)
	if aq.expiry != nil {
		f.auditTimerArmed(id, "expiry")
	}
	f.instr.active.Add(1)
	for _, mech := range assigned {
		f.instr.assigned[mech].Inc()
		f.instr.event(f.clock.Now(), id, metrics.EventAssigned, mech.String(), "")
	}
	return &Subscription{f: f, id: id}, nil
}

// QueryMechanisms reports every mechanism currently serving the query.
func (f *Factory) QueryMechanisms(queryID string) ([]Mechanism, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	aq, ok := f.queries[queryID]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownQuery, queryID)
	}
	out := append([]Mechanism{aq.mech}, aq.extra...)
	return out, nil
}

// CancelCxtQuery erases an active query.
func (f *Factory) CancelCxtQuery(queryID string) {
	f.finishQuery(queryID, metrics.EventCancelled)
}

// finishQuery tears a query down; kind records why (expiry/exhaustion →
// EventExpired, everything else → EventCancelled) in the lifecycle ring.
func (f *Factory) finishQuery(queryID string, kind metrics.EventKind) {
	f.mu.Lock()
	aq, ok := f.queries[queryID]
	if !ok {
		f.mu.Unlock()
		return
	}
	delete(f.queries, queryID)
	if aq.expiry != nil {
		aq.expiry.Stop()
		f.auditTimerStopped(queryID, "expiry")
	}
	if aq.probe != nil {
		aq.probe.Stop()
		f.auditTimerStopped(queryID, "probe")
	}
	if aq.cacheTick != nil {
		aq.cacheTick.Stop()
		f.auditTimerStopped(queryID, "cacheTick")
	}
	wasPending := aq.mech == MechanismPending
	wasLive := aq.qosLive
	aq.qosLive = false
	f.mu.Unlock()
	// Cancel on every facade, not just the recorded ones: a concurrent
	// switch may have submitted the query to a facade before updating
	// aq.mech, and cancelling an unknown id is free.
	for _, mech := range allMechanisms {
		if fac := f.facades[mech]; fac != nil {
			fac.Cancel(queryID)
		}
	}
	f.instr.active.Add(-1)
	switch kind {
	case metrics.EventExpired:
		f.instr.expired.Inc()
	default:
		kind = metrics.EventCancelled
		f.instr.cancelled.Inc()
	}
	f.instr.event(f.clock.Now(), queryID, kind, aq.mech.String(), "")
	aq.span.SetAttr("outcome", string(kind))
	aq.span.End()
	f.audit.QueryFinished(f.clock.Now(), string(f.dev.ID), queryID, string(kind),
		aq.delivered, aq.cacheHits)
	if f.qos != nil {
		f.qosEnterUnstable()
		defer f.qosExitUnstable()
		if wasPending && f.qos.Remove(queryID) {
			// Still parked: the controller dropped the entry, so the gauge
			// and the pending balance follow. A query already popped by
			// qosDispatch is accounted there instead (Remove reports false).
			f.instr.qosPending.Add(-1)
			f.audit.Add(f.clock.Now(), string(f.dev.ID), balQoSPending, -1)
		}
		if wasLive {
			f.qosDone(queryID)
			f.qosDispatch()
		}
	}
}

// onExpire handles facade notifications that a provider's merged query
// lifetime elapsed.
func (f *Factory) onExpire(queryIDs []string) {
	for _, id := range queryIDs {
		f.finishQuery(id, metrics.EventExpired)
	}
}

// deliver routes a post-extracted item to its query's client, stores it in
// the local repository, and accounts sample budgets.
func (f *Factory) deliver(queryID string, it cxt.Item) {
	f.mu.Lock()
	aq, ok := f.queries[queryID]
	if !ok {
		f.mu.Unlock()
		return
	}
	// Access control: external sources must be admitted.
	if it.Source.Address != "" && it.Source.Kind != cxt.SourceSensor {
		ctrl := f.dev.Access
		f.mu.Unlock()
		// Route high-security validations through the client.
		ctrl.SetDecider(func(src string) bool {
			return aq.client.MakeDecision("admit context source " + src + "?")
		})
		if ctrl.Check(it.Source.String()) != access.Allowed {
			return
		}
		f.mu.Lock()
		if _, still := f.queries[queryID]; !still {
			f.mu.Unlock()
			return
		}
	}
	aq.delivered++
	client := aq.client
	first := aq.delivered == 1
	mech := aq.mech
	submitted := aq.submitted
	exhausted := aq.q.Duration.IsSamples() && aq.delivered >= aq.q.Duration.Samples
	f.mu.Unlock()

	now := f.clock.Now()
	f.instr.delivered.Inc()
	f.audit.ItemDelivered(now, string(f.dev.ID), queryID, false)
	f.instr.event(now, queryID, metrics.EventDelivered, mech.String(), string(it.Type))
	if first {
		f.instr.observeFirstItem(mech, now.Sub(submitted))
		aq.span.MarkFirstItem()
	}

	f.dev.Repo.Store(it)
	f.dev.Monitor.SetMemory(f.dev.Repo.MemoryBytes(), 9<<20)
	client.ReceiveCxtItem(it)
	if exhausted {
		f.finishQuery(queryID, metrics.EventExpired)
	}
}

// SubscriptionStats describes one active query's delivery state on the
// shared provisioning plane.
type SubscriptionStats struct {
	// Delivered is how many items the query has received so far.
	Delivered int
	// CacheHits is how many of those answers came from the answer cache.
	CacheHits int
	// CacheServed reports whether the query is currently served by the
	// answer cache (no live provider).
	CacheServed bool
	// Multiplexed reports whether the query currently shares a live
	// provider stream with at least one other query.
	Multiplexed bool
	// Stream is the id of the shared provider stream serving the query
	// ("" when cache-served or finished).
	Stream string
}

// QueryStats reports the delivery statistics of an active query; a finished
// or unknown query reports the zero value.
func (f *Factory) QueryStats(queryID string) SubscriptionStats {
	f.mu.Lock()
	aq, ok := f.queries[queryID]
	if !ok {
		f.mu.Unlock()
		return SubscriptionStats{}
	}
	st := SubscriptionStats{
		Delivered:   aq.delivered,
		CacheHits:   aq.cacheHits,
		CacheServed: aq.mech == MechanismCache,
	}
	mech := aq.mech
	f.mu.Unlock()
	if fac := f.facades[mech]; fac != nil {
		if stream, subs, ok := fac.StreamInfo(queryID); ok {
			st.Stream = stream
			st.Multiplexed = subs > 1
		}
	}
	return st
}

// Repository returns the read-only view of the device's context repository,
// so applications can inspect cached context without private imports.
func (f *Factory) Repository() repo.Reader { return f.dev.Repo }

// preferences orders the mechanisms eligible for a query. Maximum
// transparency (FROM omitted) lets the middleware choose: local sensors
// first, then the ad hoc network, then the infrastructure. Explicit FROM
// pins the mechanism; entity/region queries prefer the ad hoc network and
// fall back to the infrastructure (the WeatherWatcher pattern).
func (f *Factory) preferences(q *query.Query) []Mechanism {
	var prefs []Mechanism
	add := func(m Mechanism) {
		if f.mechanismSupported(m, q) {
			prefs = append(prefs, m)
		}
	}
	switch q.From.Kind {
	case query.SourceIntSensor:
		add(MechanismLocal)
	case query.SourceExtInfra:
		add(MechanismInfra)
	case query.SourceAdHoc:
		add(MechanismAdHoc)
	case query.SourceEntity, query.SourceRegion:
		add(MechanismAdHoc)
		add(MechanismInfra)
	default: // SourceAuto
		add(MechanismLocal)
		add(MechanismAdHoc)
		add(MechanismInfra)
	}
	return prefs
}

// mechanismSupported reports whether the device can in principle serve the
// query with the mechanism (references and sensors present).
func (f *Factory) mechanismSupported(m Mechanism, q *query.Query) bool {
	switch m {
	case MechanismLocal:
		if f.localUsesGPS(q) {
			return true
		}
		_, ok := f.dev.Internal.ByType(q.Select)
		return ok
	case MechanismAdHoc:
		if q.From.NumHops > 1 {
			return f.dev.WiFi != nil
		}
		return f.dev.WiFi != nil || f.dev.BT != nil
	case MechanismInfra:
		return f.dev.UMTS != nil
	default:
		return false
	}
}

// mechanismHealthy additionally consults the ResourcesMonitor.
func (f *Factory) mechanismHealthy(m Mechanism, q *query.Query) bool {
	if !f.mechanismSupported(m, q) {
		return false
	}
	mon := f.dev.Monitor
	switch m {
	case MechanismLocal:
		if f.localUsesGPS(q) {
			return !mon.Failed(string(f.dev.GPSDevice))
		}
		return true
	case MechanismAdHoc:
		if !mon.Failed("wifi") {
			return true
		}
		// WiFi is down: BT can rescue only explicit one-hop ad hoc
		// queries (BT supports no multi-hop routing and no region/entity
		// targeting, §4.3).
		return q.From.Kind == query.SourceAdHoc && q.From.NumHops <= 1 && f.dev.BT != nil
	case MechanismInfra:
		return !mon.Failed("umts")
	default:
		return false
	}
}

func (f *Factory) localUsesGPS(q *query.Query) bool {
	return f.dev.GPSDevice != "" &&
		(q.Select == cxt.TypeLocation || q.Select == cxt.TypeSpeed)
}

// makeLocal is the LocalFacade's provider maker.
func (f *Factory) makeLocal(id string, q *query.Query, sink provider.Sink, onDone provider.DoneFunc, span *tracing.Span) (provider.Provider, error) {
	cfg := provider.LocalConfig{
		ID: id, Clock: f.clock, Query: q, Sink: sink, OnDone: onDone,
		Internal: f.dev.Internal, Span: span,
	}
	if f.localUsesGPS(q) {
		cfg.BT = f.dev.BT
		cfg.GPSDevice = f.dev.GPSDevice
	}
	return provider.NewLocal(cfg)
}

// makeAdHoc is the AdHocFacade's provider maker: WiFi for multi-hop, and
// for one-hop queries WiFi by default (no 13-s inquiry) unless the
// reducePower policy or missing hardware selects BT.
func (f *Factory) makeAdHoc(id string, q *query.Query, sink provider.Sink, onDone provider.DoneFunc, span *tracing.Span) (provider.Provider, error) {
	f.mu.Lock()
	preferBT := f.preferBTOneHop
	f.mu.Unlock()
	transport := provider.TransportWiFi
	oneHop := q.From.Kind != query.SourceAdHoc || q.From.NumHops <= 1
	switch {
	case f.dev.WiFi == nil && oneHop && f.dev.BT != nil:
		transport = provider.TransportBT
	case preferBT && oneHop && f.dev.BT != nil:
		transport = provider.TransportBT
	case f.dev.WiFi == nil:
		return nil, fmt.Errorf("%w: no wifi reference for multi-hop ad hoc", provider.ErrNoSource)
	}
	return provider.NewAdHoc(provider.AdHocConfig{
		ID: id, Clock: f.clock, Query: q, Sink: sink, OnDone: onDone,
		Transport: transport, BT: f.dev.BT, WiFi: f.dev.WiFi, Span: span,
	})
}

// makeInfra is the InfraFacade's provider maker.
func (f *Factory) makeInfra(id string, q *query.Query, sink provider.Sink, onDone provider.DoneFunc, span *tracing.Span) (provider.Provider, error) {
	return provider.NewInfra(provider.InfraConfig{
		ID: id, Clock: f.clock, Query: q, Sink: sink, OnDone: onDone,
		UMTS: f.dev.UMTS, Span: span,
	})
}

// onMonitorEvent reacts to resource failures and recoveries with the
// reconfiguration strategy of §4.3: affected queries are transparently
// moved to the next available provisioning mechanism (Fig. 5), and moved
// back when the preferred resource recovers.
func (f *Factory) onMonitorEvent(ev monitor.Event) {
	switch ev.Kind {
	case monitor.EventFailure:
		f.reassignAffected(ev.Resource, "failure of "+ev.Resource)
	case monitor.EventRecovery:
		f.restorePreferred(ev.Resource)
	case monitor.EventLowPower, monitor.EventLowMemory:
		// The QoS overload detector reacts directly: halve the live-slot
		// budget, then degrade what the cache can still serve and shed the
		// costliest of the rest.
		if f.qos != nil {
			f.qos.Scale(0.5)
			f.qosShedLoad(ev.Kind.String(), 0)
		}
		f.EvaluatePolicies()
	}
	f.evaluateAfterEvent()
}

func (f *Factory) evaluateAfterEvent() {
	f.EvaluatePolicies()
}

// mechResource names the monitor resource a mechanism depends on for a
// given query.
func (f *Factory) mechResource(m Mechanism, q *query.Query) string {
	switch m {
	case MechanismLocal:
		if f.localUsesGPS(q) {
			return string(f.dev.GPSDevice)
		}
		return ""
	case MechanismAdHoc:
		return "wifi"
	case MechanismInfra:
		return "umts"
	default:
		return ""
	}
}

// reassignAffected moves every failover-eligible query whose current
// mechanism depends on the failed resource. Queries multiplexed onto the
// same provider stream are reassigned contiguously (grouped by stream, then
// by id), so all subscribers of a failed shared stream re-merge onto one
// replacement stream instead of interleaving with unrelated queries.
func (f *Factory) reassignAffected(resource, reason string) {
	f.mu.Lock()
	if !f.failoverEnabled {
		f.mu.Unlock()
		return
	}
	var affected []*activeQuery
	for _, aq := range f.queries {
		if len(aq.prefs) < 2 {
			continue
		}
		if f.mechResource(aq.mech, aq.q) == resource {
			affected = append(affected, aq)
		}
	}
	f.mu.Unlock()
	streams := make(map[string]string, len(affected))
	for _, aq := range affected {
		if fac := f.facades[aq.mech]; fac != nil {
			if stream, _, ok := fac.StreamInfo(aq.id); ok {
				streams[aq.id] = stream
			}
		}
	}
	sort.Slice(affected, func(i, j int) bool {
		si, sj := streams[affected[i].id], streams[affected[j].id]
		if si != sj {
			return si < sj
		}
		return affected[i].id < affected[j].id
	})
	for _, aq := range affected {
		f.switchQuery(aq.id, reason)
	}
}

// restorePreferred switches queries back towards their preferred mechanism
// once its resource recovers.
func (f *Factory) restorePreferred(resource string) {
	f.mu.Lock()
	var candidates []*activeQuery
	for _, aq := range f.queries {
		if len(aq.prefs) < 2 || aq.mech == aq.prefs[0] {
			continue
		}
		for _, m := range aq.prefs {
			if m == aq.mech {
				break // current mechanism reached before the recovered one
			}
			if f.mechResource(m, aq.q) == resource {
				candidates = append(candidates, aq)
				break
			}
		}
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].id < candidates[j].id })
	f.mu.Unlock()
	for _, aq := range candidates {
		f.switchQuery(aq.id, "recovery of "+resource)
	}
}

// switchQuery re-runs mechanism selection for one query and migrates it if
// the choice changed.
func (f *Factory) switchQuery(queryID, reason string) {
	f.mu.Lock()
	aq, ok := f.queries[queryID]
	if !ok {
		f.mu.Unlock()
		return
	}
	if aq.mech == MechanismCache || aq.mech == MechanismPending {
		// Cache-served and QoS-pending queries own no facade provider;
		// promotion and release have their own paths.
		f.mu.Unlock()
		return
	}
	from := aq.mech
	var to Mechanism
	for _, m := range aq.prefs {
		if f.mechanismHealthy(m, aq.q) {
			to = m
			break
		}
	}
	if to == 0 || to == from {
		f.mu.Unlock()
		return
	}
	mergeOn := f.mergeEnabled
	f.mu.Unlock()

	f.facades[from].Cancel(queryID)
	if err := f.facades[to].submit(queryID, aq.q, mergeOn, aq.span); err != nil {
		aq.client.InformError(fmt.Sprintf("contory: switching %s to %s: %v", queryID, to, err))
		// InformError may have re-entered Cancel: only resurrect the query
		// on its old mechanism if this record is still registered.
		f.mu.Lock()
		cur, still := f.queries[queryID]
		f.mu.Unlock()
		if !still || cur != aq {
			return
		}
		// Try to re-submit on the old mechanism so the query is not lost.
		if err := f.facades[from].submit(queryID, aq.q, mergeOn, aq.span); err != nil {
			f.finishQuery(queryID, metrics.EventCancelled)
			return
		}
		// The re-submit may have multiplexed the query back onto a shared
		// stream whose provider delivered synchronously — and a subscriber's
		// Cancel in that callback can tear this record down mid-flight. Like
		// every other submit site, re-check identity and undo the attach if
		// the record changed, or the stream keeps a phantom subscriber.
		f.mu.Lock()
		cur, still = f.queries[queryID]
		f.mu.Unlock()
		if !still || cur != aq {
			f.facades[from].Cancel(queryID)
		}
		return
	}
	f.mu.Lock()
	if cur, still := f.queries[queryID]; !still || cur != aq {
		// The client cancelled (or the query exhausted) inside a delivery
		// callback the new provider fired synchronously on Submit: undo the
		// fresh registration instead of resurrecting the query.
		f.mu.Unlock()
		f.facades[to].Cancel(queryID)
		return
	}
	aq.mech = to
	f.switches = append(f.switches, SwitchEvent{
		At: f.clock.Now(), QueryID: queryID, From: from, To: to, Reason: reason,
	})
	sw := aq.span.Child("switch")
	sw.SetAttr("from", from.String())
	sw.SetAttr("to", to.String())
	sw.SetAttr("reason", reason)
	sw.End()
	// A query forced below its preferred mechanism probes for that
	// mechanism's return (the Fig. 5 recovery path); arriving back at the
	// preferred mechanism stops the probe.
	if aq.probe == nil && to != aq.prefs[0] {
		f.startRecoveryProbeLocked(aq)
	}
	if to == aq.prefs[0] && aq.probe != nil {
		aq.probe.Stop()
		aq.probe = nil
		f.auditTimerStopped(queryID, "probe")
	}
	f.mu.Unlock()
	f.instr.switched.Inc()
	f.instr.event(f.clock.Now(), queryID, metrics.EventSwitched, to.String(),
		"from "+from.String()+": "+reason)
}

// startRecoveryProbeLocked arms the periodic probe watching for the
// query's preferred mechanism to come back: BT discovery when the query
// prefers a local BT-GPS, a one-hop finder when it prefers the ad hoc
// network. Infrastructure recovery needs no probe — the next successful
// UMTS operation (e.g. a publish) reports it. f.mu must be held.
func (f *Factory) startRecoveryProbeLocked(aq *activeQuery) {
	queryID := aq.id
	switch aq.prefs[0] {
	case MechanismLocal:
		if f.localUsesGPS(aq.q) && f.dev.BT != nil {
			aq.probe = f.clock.Every(recoveryProbeInterval, func() { f.probeGPS(queryID) })
		}
	case MechanismAdHoc:
		if f.dev.WiFi != nil {
			aq.probe = f.clock.Every(recoveryProbeInterval, func() { f.probeWiFi(queryID) })
		}
	}
	if aq.probe != nil {
		f.auditTimerArmed(queryID, "probe")
	}
}

// probeGPS runs one BT discovery looking for the query's GPS device; if
// found, the monitor recovery triggers the switch back.
func (f *Factory) probeGPS(queryID string) {
	f.mu.Lock()
	aq, ok := f.queries[queryID]
	dev := f.dev.GPSDevice
	f.mu.Unlock()
	if !ok || aq.mech == MechanismLocal || dev == "" {
		return
	}
	f.dev.BT.Discover(func(found []simnet.NodeID) {
		for _, id := range found {
			if id == dev {
				f.dev.Monitor.ReportRecovery(string(dev))
				return
			}
		}
	})
}

// probeWiFi runs one cheap one-hop finder while the query sits below its
// preferred ad hoc mechanism; a successful probe reports WiFi recovery to
// the monitor, which triggers the switch back.
func (f *Factory) probeWiFi(queryID string) {
	f.mu.Lock()
	aq, ok := f.queries[queryID]
	var cur Mechanism
	if ok {
		cur = aq.mech
	}
	f.mu.Unlock()
	if !ok || cur == MechanismAdHoc {
		return
	}
	if !f.dev.Monitor.Failed("wifi") {
		return // recovery already observed; the monitor event moves the query
	}
	f.dev.WiFi.Probe(nil)
}

// AddControlPolicy installs a contextRule; conditions are evaluated against
// the ResourcesMonitor's attributes plus runtime counters.
func (f *Factory) AddControlPolicy(r policy.Rule) error {
	return f.engine.AddRule(r)
}

// RemoveControlPolicy removes a contextRule by name.
func (f *Factory) RemoveControlPolicy(name string) {
	f.engine.RemoveRule(name)
}

// EvaluatePolicies checks every control policy against the current device
// state, enforcing newly firing actions.
func (f *Factory) EvaluatePolicies() {
	attrs := policy.Attributes(f.dev.Monitor.Attributes())
	f.mu.Lock()
	attrs["activeQueries"] = strconv.Itoa(len(f.queries))
	f.mu.Unlock()
	f.engine.Evaluate(attrs)
}

// enforce applies a fired contextRule's action (§4.3).
func (f *Factory) enforce(r policy.Rule) {
	switch r.Action {
	case policy.ReducePower:
		f.enforceReducePower(r.Name)
		if f.qos != nil {
			// Scheduler knob: halve the live-provisioning budget so fewer
			// radio-bearing queries run concurrently while power is scarce.
			f.qos.Scale(0.5)
		}
	case policy.ReduceMemory:
		f.dev.Repo.Clear()
		f.dev.Monitor.SetMemory(0, 9<<20)
	case policy.ReduceLoad:
		if f.qos != nil {
			f.qosShedLoad("reduceLoad ("+r.Name+")", 1)
			return
		}
		f.enforceReduceLoad(r.Name)
	}
}

// enforceReducePower suspends or relocates high energy-consuming queries:
// extInfra (UMTS) queries switch to cheaper mechanisms or terminate, and
// one-hop ad hoc provisioning moves from WiFi multi-hop to BT.
func (f *Factory) enforceReducePower(ruleName string) {
	f.mu.Lock()
	f.preferBTOneHop = true
	var onInfra []*activeQuery
	for _, aq := range f.queries {
		if aq.mech == MechanismInfra {
			onInfra = append(onInfra, aq)
		}
	}
	sort.Slice(onInfra, func(i, j int) bool { return onInfra[i].id < onInfra[j].id })
	f.mu.Unlock()
	for _, aq := range onInfra {
		if len(aq.prefs) > 1 {
			f.switchQuery(aq.id, "reducePower ("+ruleName+")")
			continue
		}
		aq.client.InformError("contory: query " + aq.id + " terminated by reducePower policy")
		f.finishQuery(aq.id, metrics.EventCancelled)
	}
}

// enforceReduceLoad terminates the query with the highest measured energy
// cost per delivered item — the least productive consumer — never simply
// the newest submission.
func (f *Factory) enforceReduceLoad(ruleName string) {
	now := f.clock.Now()
	f.mu.Lock()
	var victim *activeQuery
	var victimCost float64
	for _, aq := range f.queries {
		cost := f.queryCost(aq, now)
		if victim == nil || cost > victimCost ||
			(cost == victimCost && shedBefore(aq, victim)) {
			victim, victimCost = aq, cost
		}
	}
	f.mu.Unlock()
	if victim == nil {
		return
	}
	victim.client.InformError("contory: query " + victim.id + " terminated by reduceLoad policy")
	f.finishQuery(victim.id, metrics.EventCancelled)
}

// PublishCxtItem makes a context item accessible to external entities in
// the ad hoc network. The publisher must have registered as a context
// server (§4.4).
func (f *Factory) PublishCxtItem(client Client, item cxt.Item, opts provider.PublishOptions) error {
	f.mu.Lock()
	registered := f.publishers[client]
	f.mu.Unlock()
	if !registered {
		return fmt.Errorf("core: publish item: %w", ErrNotRegistered)
	}
	if item.Timestamp.IsZero() {
		item.Timestamp = f.clock.Now()
	}
	_, err := f.cxtPub.Publish(item, opts)
	return err
}

// EraseCxtItem withdraws a previously published item.
func (f *Factory) EraseCxtItem(t cxt.Type, transport provider.Transport) {
	f.cxtPub.Erase(t, transport)
}

// StoreCxtItem stores a context item locally and, when an infrastructure
// is reachable, also in the remote repository.
func (f *Factory) StoreCxtItem(item cxt.Item) {
	if item.Timestamp.IsZero() {
		item.Timestamp = f.clock.Now()
	}
	f.dev.Repo.StoreRemote(item, nil)
	f.dev.Monitor.SetMemory(f.dev.Repo.MemoryBytes(), 9<<20)
}

// RegisterCxtServer registers (and authenticates) a client as eligible to
// publish context items.
func (f *Factory) RegisterCxtServer(client Client) error {
	if client == nil {
		return fmt.Errorf("core: register server: %w", ErrNilClient)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.publishers[client] = true
	return nil
}

// DeregisterCxtServer removes a publisher registration.
func (f *Factory) DeregisterCxtServer(client Client) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.publishers, client)
}

// Close cancels every active query, stops all providers, and detaches the
// factory from the monitor's event fan-out.
func (f *Factory) Close() {
	if f.monCancel != nil {
		f.monCancel()
	}
	if f.recorder != nil {
		f.recorder.Stop()
	}
	f.mu.Lock()
	ids := make([]string, 0, len(f.queries))
	for id := range f.queries {
		ids = append(ids, id)
	}
	f.mu.Unlock()
	for _, id := range ids {
		f.finishQuery(id, metrics.EventCancelled)
	}
	for _, fac := range f.facades {
		fac.StopAll()
	}
}

// remoteStore adapts the UMTS reference to the repository's Remote
// interface: complete logs live in the infrastructure (§4.3).
type remoteStore struct {
	f *Factory
}

var _ repo.Remote = remoteStore{}

// StoreRemote implements repo.Remote.
func (r remoteStore) StoreRemote(item cxt.Item, done func(error)) {
	if r.f.dev.UMTS == nil {
		if done != nil {
			done(fmt.Errorf("core: no infrastructure reference"))
		}
		return
	}
	if _, err := r.f.dev.UMTS.Publish(InfraOpStoreItem, item); err != nil {
		if done != nil {
			done(err)
		}
		return
	}
	if done != nil {
		done(nil)
	}
}
