package core

import (
	"time"

	"contory/internal/metrics"
)

// instruments caches the Factory's hot-path metric handles so submitting,
// delivering and switching never pay a registry map lookup.
type instruments struct {
	reg *metrics.Registry
	// owner prefixes lifecycle-event query ids ("boat-1/q-3"): factories
	// number queries locally, so a shared world registry needs the device
	// id to keep event streams unambiguous.
	owner string

	submitted *metrics.Counter
	rejected  *metrics.Counter
	delivered *metrics.Counter
	switched  *metrics.Counter
	expired   *metrics.Counter
	cancelled *metrics.Counter
	active    *metrics.Gauge

	// Answer-cache instrumentation (shared provisioning plane).
	cacheHits       *metrics.Counter
	cacheMisses     *metrics.Counter
	cacheRefreshes  *metrics.Counter
	cachePromotions *metrics.Counter
	cacheAgeMs      *metrics.Histogram // age of served-from-cache answers

	// QoS-plane instrumentation (admission, scheduling, shedding).
	qosAdmitted *metrics.Counter
	qosRejected *metrics.Counter
	qosDeferred *metrics.Counter
	qosReleased *metrics.Counter
	qosDegraded *metrics.Counter
	qosShed     *metrics.Counter
	qosPending  *metrics.Gauge
	// qosDoneUnderflow counts live-slot double releases the controller
	// detected (Done() with no slot held) — always a middleware bug.
	qosDoneUnderflow *metrics.Counter

	assigned   map[Mechanism]*metrics.Counter
	firstLatMs map[Mechanism]*metrics.Histogram
}

// allMechanisms is the fixed facade domain (MechanismCache is not a facade:
// cache-served queries own no provider, so it is instrumented separately).
var allMechanisms = []Mechanism{MechanismLocal, MechanismAdHoc, MechanismInfra}

func newInstruments(reg *metrics.Registry, owner string) *instruments {
	in := &instruments{
		reg:              reg,
		owner:            owner,
		submitted:        reg.Counter("core.query.submitted"),
		rejected:         reg.Counter("core.query.rejected"),
		delivered:        reg.Counter("core.query.items_delivered"),
		switched:         reg.Counter("core.query.switched"),
		expired:          reg.Counter("core.query.expired"),
		cancelled:        reg.Counter("core.query.cancelled"),
		active:           reg.Gauge("core.query.active"),
		cacheHits:        reg.Counter("core.cache.hits"),
		cacheMisses:      reg.Counter("core.cache.misses"),
		cacheRefreshes:   reg.Counter("core.cache.refreshes"),
		cachePromotions:  reg.Counter("core.cache.promotions"),
		cacheAgeMs:       reg.Histogram("core.cache.served_age_ms", metrics.DefaultLatencyBucketsMs),
		qosAdmitted:      reg.Counter("qos.admitted"),
		qosRejected:      reg.Counter("qos.rejected"),
		qosDeferred:      reg.Counter("qos.deferred"),
		qosReleased:      reg.Counter("qos.released"),
		qosDegraded:      reg.Counter("qos.degraded"),
		qosShed:          reg.Counter("qos.shed"),
		qosPending:       reg.Gauge("qos.pending"),
		qosDoneUnderflow: reg.Counter("qos.done.underflow"),
		assigned:         make(map[Mechanism]*metrics.Counter, len(allMechanisms)+1),
		firstLatMs:       make(map[Mechanism]*metrics.Histogram, len(allMechanisms)+1),
	}
	for _, m := range [...]Mechanism{MechanismLocal, MechanismAdHoc, MechanismInfra, MechanismCache} {
		in.assigned[m] = reg.Counter("core.query.assigned." + m.String())
		in.firstLatMs[m] = reg.Histogram(
			"core.query.first_item_latency_ms."+m.String(), metrics.DefaultLatencyBucketsMs)
	}
	return in
}

// observeServedAge records the age of an answer served from the cache.
func (in *instruments) observeServedAge(age time.Duration) {
	in.cacheAgeMs.Observe(float64(age) / float64(time.Millisecond))
}

// event stamps one lifecycle transition into the registry's bounded ring.
func (in *instruments) event(at time.Time, queryID string, kind metrics.EventKind, mech, detail string) {
	if in.owner != "" {
		queryID = in.owner + "/" + queryID
	}
	in.reg.Record(metrics.Event{
		At: at, Query: queryID, Kind: kind, Mechanism: mech, Detail: detail,
	})
}

// observeFirstItem records the submission→first-delivery latency for the
// serving mechanism (the per-mechanism query latency of Table 1).
func (in *instruments) observeFirstItem(mech Mechanism, lat time.Duration) {
	if h := in.firstLatMs[mech]; h != nil {
		h.Observe(float64(lat) / float64(time.Millisecond))
	}
}
