package core

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"contory/internal/audit"
	"contory/internal/cxt"
	"contory/internal/metrics"
	"contory/internal/provider"
	"contory/internal/query"
	"contory/internal/tracing"
	"contory/internal/vclock"
)

// Mechanism identifies one of the three provisioning mechanisms, each
// fronted by its own Facade module.
type Mechanism int

// Mechanisms.
const (
	MechanismLocal Mechanism = iota + 1
	MechanismAdHoc
	MechanismInfra
	// MechanismCache is the answer cache of the shared provisioning plane:
	// queries whose FRESHNESS clause is satisfiable by repository items are
	// served from stored context with zero provider work. It is not backed
	// by a Facade — a cache-served query owns no provider — and promotes to
	// a real mechanism when the cache goes stale.
	MechanismCache
	// MechanismPending marks a query parked in the QoS plane's pending
	// queue: admitted in principle, but deferred until its client's token
	// is earned and a provisioning slot frees up. Like MechanismCache it
	// is not backed by a Facade; release assigns a real mechanism.
	MechanismPending
)

// String implements fmt.Stringer using the FROM-clause vocabulary.
func (m Mechanism) String() string {
	switch m {
	case MechanismLocal:
		return "intSensor"
	case MechanismAdHoc:
		return "adHocNetwork"
	case MechanismInfra:
		return "extInfra"
	case MechanismCache:
		return "cache"
	case MechanismPending:
		return "pending"
	default:
		return fmt.Sprintf("mechanism(%d)", int(m))
	}
}

// providerMaker builds a provider for a (possibly merged) query; supplied
// by the ContextFactory so the Facade stays mechanism-agnostic. span is the
// provider's "assign" span (nil when tracing is off), under which the
// provider opens its radio-operation child spans.
type providerMaker func(id string, q *query.Query, sink provider.Sink, onDone provider.DoneFunc, span *tracing.Span) (provider.Provider, error)

// managed is one running provider together with the original queries whose
// results are post-extracted from its stream.
type managed struct {
	prov      provider.Provider
	merged    *query.Query
	originals map[string]*query.Query // queryID → original query
	span      *tracing.Span           // "assign": spans the provider's lifetime
}

// Facade offers a unified interface for managing CxtProviders of one
// provisioning mechanism (the Facade design pattern of §4.3). It performs
// query aggregation — merging a newly submitted query with an active one
// when possible and post-extracting each original's results — so the
// number of active providers stays minimal.
type Facade struct {
	mechanism Mechanism
	clock     vclock.Clock
	make      providerMaker
	deliver   func(queryID string, it cxt.Item)
	onExpire  func(queryIDs []string)

	mu       sync.Mutex
	nextID   int
	managed  map[string]*managed // provider id → managed
	merges   int                 // successful merges (for the ablation bench)
	creates  int                 // providers created
	disabled bool                // reducePower can suspend a whole facade

	mMerges  *metrics.Counter
	mCreates *metrics.Counter
	mActive  *metrics.Gauge

	// Stream-multiplexer instrumentation: queries attaching to / detaching
	// from an already-running provider stream, and streams that became
	// shared (grew to two or more subscribers).
	mMuxAttach *metrics.Counter
	mMuxDetach *metrics.Counter
	mMuxShared *metrics.Counter

	// Invariant auditing: owner is the device id the audit balances are
	// keyed under; audit is nil when auditing is off (every tap is
	// nil-safe). balProviders/balSubs name the facade's two conservation
	// balances — running providers and mux subscriber attachments — which
	// must both return to zero after StopAll.
	owner        string
	audit        *audit.Auditor
	balProviders string
	balSubs      string
}

// newFacade returns a Facade for one mechanism.
func newFacade(m Mechanism, clock vclock.Clock, mk providerMaker,
	deliver func(string, cxt.Item), onExpire func([]string), reg *metrics.Registry,
	owner string, aud *audit.Auditor) *Facade {
	return &Facade{
		mechanism:    m,
		clock:        clock,
		make:         mk,
		deliver:      deliver,
		onExpire:     onExpire,
		managed:      make(map[string]*managed),
		mMerges:      reg.Counter("core.facade.merges." + m.String()),
		mCreates:     reg.Counter("core.facade.providers_created." + m.String()),
		mActive:      reg.Gauge("core.facade.active_providers." + m.String()),
		mMuxAttach:   reg.Counter("core.mux.attached." + m.String()),
		mMuxDetach:   reg.Counter("core.mux.detached." + m.String()),
		mMuxShared:   reg.Counter("core.mux.shared_streams." + m.String()),
		owner:        owner,
		audit:        aud,
		balProviders: "facade.providers." + m.String(),
		balSubs:      "mux.subs." + m.String(),
	}
}

// auditAdd moves one of the facade's conservation balances.
func (f *Facade) auditAdd(name string, delta int64) {
	f.audit.Add(f.clock.Now(), f.owner, name, delta)
}

// Mechanism returns the facade's provisioning mechanism.
func (f *Facade) Mechanism() Mechanism { return f.mechanism }

// Stats returns how many providers were created and how many submissions
// were satisfied by merging into an existing provider.
func (f *Facade) Stats() (created, merged int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.creates, f.merges
}

// ActiveProviders returns the number of currently running providers.
func (f *Facade) ActiveProviders() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.managed)
}

// SetDisabled suspends (true) or resumes (false) provider creation; used
// by the reducePower enforcement.
func (f *Facade) SetDisabled(disabled bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.disabled = disabled
}

// ErrFacadeDisabled reports submissions to a suspended facade.
var ErrFacadeDisabled = fmt.Errorf("core: facade suspended by control policy")

// Submit assigns the query to this facade: it merges into an existing
// provider when the aggregation rules allow, otherwise it instantiates a
// new CxtProvider. mergeEnabled=false (ablation) always creates a provider.
func (f *Facade) Submit(queryID string, q *query.Query, mergeEnabled bool) error {
	return f.submit(queryID, q, mergeEnabled, nil)
}

// submit is Submit carrying the query's trace span: a new provider gets an
// "assign" child span covering its whole lifetime, a merged submission gets
// an instantaneous "assign" span marking the aggregation decision.
func (f *Facade) submit(queryID string, q *query.Query, mergeEnabled bool, parent *tracing.Span) error {
	f.mu.Lock()
	if f.disabled {
		f.mu.Unlock()
		return fmt.Errorf("core: %s %s: %w", f.mechanism, queryID, ErrFacadeDisabled)
	}
	if mergeEnabled {
		// Deterministic scan order.
		ids := make([]string, 0, len(f.managed))
		for id := range f.managed {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			m := f.managed[id]
			if !query.SameCluster(m.merged, q) {
				continue
			}
			mergedQ, err := query.Merge(m.merged, q)
			if err != nil {
				continue
			}
			m.merged = mergedQ
			m.originals[queryID] = q.Clone()
			m.prov.UpdateQuery(mergedQ)
			f.merges++
			subs := len(m.originals)
			owner := m.span
			f.mu.Unlock()
			f.mMerges.Inc()
			f.mMuxAttach.Inc()
			f.auditAdd(f.balSubs, 1)
			if subs == 2 {
				// The stream just became shared: the owning query's provider
				// now fans out to a second subscriber.
				f.mMuxShared.Inc()
			}
			// The subscriber joins the owning stream's trace: the attach is
			// recorded under the provider's lifetime span.
			at := owner.Child("mux.attach")
			at.SetAttr("subscriber", queryID)
			at.SetAttr("subscribers", strconv.Itoa(subs))
			at.End()
			sp := parent.Child("assign")
			sp.SetAttr("mech", f.mechanism.String())
			sp.SetAttr("provider", id)
			sp.SetAttr("merged", "true")
			sp.SetAttr("multiplexed", "true")
			sp.End()
			return nil
		}
	}
	f.nextID++
	provID := f.mechanism.String() + "-" + strconv.Itoa(f.nextID)
	span := parent.Child("assign")
	span.SetAttr("mech", f.mechanism.String())
	span.SetAttr("provider", provID)
	m := &managed{
		merged:    q.Clone(),
		originals: map[string]*query.Query{queryID: q.Clone()},
		span:      span,
	}
	f.managed[provID] = m
	f.creates++
	f.mu.Unlock()
	f.mCreates.Inc()
	f.mActive.Add(1)
	f.auditAdd(f.balProviders, 1)
	f.auditAdd(f.balSubs, 1)

	prov, err := f.make(provID, q, f.sinkFor(provID), f.doneFor(provID), span)
	if err != nil {
		f.removeFailed(provID)
		span.SetAttr("error", err.Error())
		span.End()
		return fmt.Errorf("core: %s facade: %w", f.mechanism, err)
	}
	f.mu.Lock()
	if cur, ok := f.managed[provID]; ok {
		cur.prov = prov
	}
	f.mu.Unlock()
	if err := prov.Start(); err != nil {
		f.removeFailed(provID)
		span.SetAttr("error", err.Error())
		span.End()
		return fmt.Errorf("core: %s facade start: %w", f.mechanism, err)
	}
	return nil
}

// removeFailed tears down the managed entry of a provider whose
// construction or Start failed. Start can re-enter the facade through a
// synchronous delivery (a client callback cancelling subscribers, even
// this entry), so the entry may already be gone — or may have gained
// subscribers by merge — and the accounting follows what is actually
// removed instead of decrementing blindly.
func (f *Facade) removeFailed(provID string) {
	f.mu.Lock()
	m, ok := f.managed[provID]
	var subs int
	if ok {
		subs = len(m.originals)
		delete(f.managed, provID)
	}
	f.mu.Unlock()
	if !ok {
		return
	}
	f.mActive.Add(-1)
	f.auditAdd(f.balProviders, -1)
	f.auditAdd(f.balSubs, -int64(subs))
}

// sinkFor returns the provider sink performing post-extraction: received
// results for the merged query are matched against each original query and
// delivered upward per query id.
func (f *Facade) sinkFor(provID string) provider.Sink {
	return func(it cxt.Item) {
		now := f.clock.Now()
		f.mu.Lock()
		m := f.managed[provID]
		if m == nil {
			f.mu.Unlock()
			return
		}
		type target struct {
			id string
		}
		var targets []target
		ids := make([]string, 0, len(m.originals))
		for id := range m.originals {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			if m.originals[id].Matches(it, now) {
				targets = append(targets, target{id: id})
			}
		}
		f.mu.Unlock()
		for _, t := range targets {
			f.deliver(t.id, it)
		}
	}
}

// doneFor returns the provider-completion callback: the merged query's
// lifetime elapsed, so every remaining original expires.
func (f *Facade) doneFor(provID string) provider.DoneFunc {
	return func() {
		f.mu.Lock()
		m := f.managed[provID]
		if m == nil {
			f.mu.Unlock()
			return
		}
		delete(f.managed, provID)
		ids := make([]string, 0, len(m.originals))
		for id := range m.originals {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		f.mu.Unlock()
		m.span.End()
		f.mActive.Add(-1)
		f.auditAdd(f.balProviders, -1)
		f.auditAdd(f.balSubs, -int64(len(ids)))
		if f.onExpire != nil {
			f.onExpire(ids)
		}
	}
}

// Cancel removes a query from the facade. When a provider loses its last
// original query it is stopped; otherwise the provider's merged query is
// re-derived from the remaining originals so over-collection stops.
func (f *Facade) Cancel(queryID string) bool {
	f.mu.Lock()
	var found *managed
	var provID string
	for id, m := range f.managed {
		if _, ok := m.originals[queryID]; ok {
			found, provID = m, id
			break
		}
	}
	if found == nil {
		f.mu.Unlock()
		return false
	}
	delete(found.originals, queryID)
	if len(found.originals) == 0 {
		delete(f.managed, provID)
		prov := found.prov
		f.mu.Unlock()
		found.span.End()
		f.mActive.Add(-1)
		f.auditAdd(f.balProviders, -1)
		f.auditAdd(f.balSubs, -1)
		if prov != nil {
			prov.Stop()
		}
		return true
	}
	rest := make([]*query.Query, 0, len(found.originals))
	ids := make([]string, 0, len(found.originals))
	for id := range found.originals {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		rest = append(rest, found.originals[id])
	}
	if narrowed, err := query.MergeAll(rest); err == nil {
		found.merged = narrowed
		if found.prov != nil {
			found.prov.UpdateQuery(narrowed)
		}
	}
	f.mu.Unlock()
	// A refcounted detach: the shared stream keeps running for the
	// remaining subscribers.
	f.mMuxDetach.Inc()
	f.auditAdd(f.balSubs, -1)
	return true
}

// StreamInfo reports which provider stream currently serves the query and
// how many queries share it.
func (f *Facade) StreamInfo(queryID string) (streamID string, subscribers int, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for id, m := range f.managed {
		if _, has := m.originals[queryID]; has {
			return id, len(m.originals), true
		}
	}
	return "", 0, false
}

// Queries returns the ids of all queries currently served by this facade.
func (f *Facade) Queries() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []string
	for _, m := range f.managed {
		for id := range m.originals {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// StopAll stops every provider (device shutdown or facade suspension).
// Under auditing it closes the facade's conservation balances: provider
// refcounts and mux subscriber counts must both return to zero here.
func (f *Facade) StopAll() {
	f.mu.Lock()
	ms := make([]*managed, 0, len(f.managed))
	subs := 0
	for _, m := range f.managed {
		ms = append(ms, m)
		subs += len(m.originals)
	}
	f.managed = make(map[string]*managed)
	f.mu.Unlock()
	f.mActive.Add(-float64(len(ms)))
	f.auditAdd(f.balProviders, -int64(len(ms)))
	f.auditAdd(f.balSubs, -int64(subs))
	for _, m := range ms {
		m.span.End()
		if m.prov != nil {
			m.prov.Stop()
		}
	}
	now := f.clock.Now()
	f.audit.ExpectZero(now, f.owner, f.balProviders)
	f.audit.ExpectZero(now, f.owner, f.balSubs)
}
