package core

import (
	"strings"
	"testing"
	"time"

	"contory/internal/chaos"
	"contory/internal/cxt"
	"contory/internal/metrics"
	"contory/internal/query"
	"contory/internal/radio"
)

// cancellingClient cancels its own query from inside a middleware callback —
// the reentrancy pattern that used to race Subscription.Cancel against
// reassignAffected's switchQuery.
type cancellingClient struct {
	factory     *Factory
	queryID     string
	cancelOnErr bool // cancel inside InformError
	cancelAfter int  // cancel inside ReceiveCxtItem once this many items arrived (0 = never)

	items []cxt.Item
	errs  []string
}

func (c *cancellingClient) ReceiveCxtItem(it cxt.Item) {
	c.items = append(c.items, it)
	if c.cancelAfter > 0 && len(c.items) >= c.cancelAfter {
		c.factory.CancelCxtQuery(c.queryID)
	}
}

func (c *cancellingClient) InformError(msg string) {
	c.errs = append(c.errs, msg)
	if c.cancelOnErr {
		c.factory.CancelCxtQuery(c.queryID)
	}
}

func (c *cancellingClient) MakeDecision(string) bool { return true }

// assertNoResidue verifies no facade still tracks the query and the factory
// forgot it.
func assertNoResidue(t *testing.T, f *Factory, queryID string) {
	t.Helper()
	if qs := f.ActiveQueries(); len(qs) != 0 {
		t.Fatalf("active queries after cancel = %v", qs)
	}
	for _, m := range allMechanisms {
		for _, id := range f.Facade(m).Queries() {
			if id == queryID {
				t.Fatalf("facade %s still tracks %s after cancel", m, queryID)
			}
		}
	}
}

// Regression: the client cancels inside the InformError fired when a
// fault-driven switch lands on a suspended facade. The switch must not
// resurrect the cancelled query on its old mechanism.
func TestCancelInsideErrorCallbackDuringFailover(t *testing.T) {
	b := newBed(t)
	cli := &cancellingClient{factory: b.factory, cancelOnErr: true}
	q := query.MustParse("SELECT location DURATION 30 min EVERY 5 sec")
	sub, err := b.factory.ProcessCxtQuery(q, cli)
	if err != nil {
		t.Fatal(err)
	}
	cli.queryID = sub.ID()
	b.clk.Advance(30 * time.Second)
	if len(cli.items) == 0 {
		t.Fatal("no GPS deliveries before the fault")
	}

	// The ad hoc fallback is suspended, so the GPS-failure switch errors into
	// InformError — where the client cancels.
	b.factory.Facade(MechanismAdHoc).SetDisabled(true)
	b.gpsDev.SetFailed(true)
	b.clk.Advance(2 * time.Minute)

	if len(cli.errs) == 0 {
		t.Fatal("no error informed for the failed switch")
	}
	if sub.Active() {
		t.Fatal("subscription still active after cancelling in InformError")
	}
	assertNoResidue(t, b.factory, sub.ID())

	// Later recovery must be a no-op for the cancelled query.
	b.gpsDev.SetFailed(false)
	delivered := len(cli.items)
	b.clk.Advance(3 * time.Minute)
	if len(cli.items) != delivered {
		t.Fatal("deliveries resumed for a cancelled query")
	}
}

// Regression: the client cancels inside a delivery callback right after a
// fault-driven failover, while the recovery probe for the preferred
// mechanism is armed.
func TestCancelInsideDeliveryDuringFailover(t *testing.T) {
	b := newBed(t)
	b.peer.WiFi.PublishTag("location", cxt.Item{
		Type: cxt.TypeLocation, Value: cxt.Fix{Lat: 60.17, Lon: 24.94},
		Timestamp: b.clk.Now(), Lifetime: time.Hour,
	}, 0)
	cli := &cancellingClient{factory: b.factory}
	q := query.MustParse("SELECT location DURATION 30 min EVERY 5 sec")
	sub, err := b.factory.ProcessCxtQuery(q, cli)
	if err != nil {
		t.Fatal(err)
	}
	cli.queryID = sub.ID()
	b.clk.Advance(30 * time.Second)
	before := len(cli.items)
	if before == 0 {
		t.Fatal("no GPS deliveries before the fault")
	}

	// Cancel on the first item the ad hoc fallback delivers.
	cli.cancelAfter = before + 1
	b.gpsDev.SetFailed(true)
	b.clk.Advance(3 * time.Minute)

	if len(cli.items) != before+1 {
		t.Fatalf("items = %d, want exactly one post-failover delivery", len(cli.items))
	}
	if sub.Active() {
		t.Fatal("subscription still active after cancelling in a delivery callback")
	}
	assertNoResidue(t, b.factory, sub.ID())
	if sw := b.factory.Switches(); len(sw) != 1 || sw[0].To != MechanismAdHoc {
		t.Fatalf("switches = %+v, want the single failover", sw)
	}

	// The armed GPS recovery probe must not revive the cancelled query.
	b.gpsDev.SetFailed(false)
	b.clk.Advance(3 * time.Minute)
	if sw := b.factory.Switches(); len(sw) != 1 {
		t.Fatalf("switches after recovery = %+v, want no switch-back for a cancelled query", sw)
	}
}

// The construction options and the deprecated mutate-after-construction
// setters are last-write-wins, per field.
func TestRetryOptionsAndSettersLastWriteWins(t *testing.T) {
	b := newBed(t)
	f := NewFactory(b.peer,
		WithRetryPolicy(RetryPolicy{Attempts: 3, Timeout: 5 * time.Second, Backoff: 2 * time.Second}),
		WithMerging(false),
		WithFailover(false),
	)
	if p := f.RetryPolicy(); p.Attempts != 3 || p.Timeout != 5*time.Second || p.Backoff != 2*time.Second {
		t.Fatalf("factory policy = %+v", p)
	}
	// The option propagated to the per-mechanism references.
	if retries, timeout, backoff := b.peer.WiFi.RetryPolicy(); retries != 2 || timeout != 5*time.Second || backoff != 2*time.Second {
		t.Fatalf("wifi policy = %d/%v/%v after WithRetryPolicy", retries, timeout, backoff)
	}
	if got := b.peer.BT.RequestTimeout(); got != 5*time.Second {
		t.Fatalf("bt timeout = %v after WithRetryPolicy", got)
	}
	// A reference-level SetRetryPolicy call after construction replaces the
	// option-derived values (last write wins at the reference).
	b.peer.WiFi.SetRetryPolicy(7, 5*time.Second, 2*time.Second)
	if retries, timeout, _ := b.peer.WiFi.RetryPolicy(); retries != 7 || timeout != 5*time.Second {
		t.Fatalf("wifi policy = %d/%v after SetRetryPolicy", retries, timeout)
	}
	// Behaviour toggles are options-only: fixed at construction.
	if f.MergeEnabled() || f.FailoverEnabled() {
		t.Fatal("options did not disable merging/failover")
	}

	// WithRequestTimeout alone adjusts only the timeout.
	b2 := newBed(t)
	f2 := NewFactory(b2.peer, WithRequestTimeout(10*time.Second))
	if p := f2.RetryPolicy(); p.Attempts != 1 || p.Timeout != 10*time.Second {
		t.Fatalf("policy = %+v after WithRequestTimeout", p)
	}
	if got := b2.peer.BT.RequestTimeout(); got != 10*time.Second {
		t.Fatalf("bt timeout = %v after WithRequestTimeout", got)
	}
}

// TestFailoverChaosProfiles extends the Fig. 5 scenario into a table over
// injected chaos faults: for each profile the middleware must fail over,
// keep data flowing, fail back once the fault clears, and every switch must
// be attributable to the injected fault via the metrics event ring.
func TestFailoverChaosProfiles(t *testing.T) {
	locItem := func(now time.Time) cxt.Item {
		return cxt.Item{
			Type: cxt.TypeLocation, Value: cxt.Fix{Lat: 60.17, Lon: 24.94},
			Timestamp: now, Lifetime: time.Hour,
		}
	}
	cases := []struct {
		name       string
		src        string // query source string
		infraStore bool   // stock the infra store with locations
		fault      chaos.Fault
		during     Mechanism // mechanism while the fault is active
		after      Mechanism // mechanism after fail-back
	}{
		{
			// The paper's Fig. 5 fault as a chaos profile: the BT link to the
			// GPS flaps instead of the receiver dying.
			name: "gps-link-flap",
			src:  "SELECT location DURATION 30 min EVERY 5 sec",
			fault: chaos.Fault{
				ID: "fault-0000", Kind: chaos.KindLinkFlap,
				At: 155 * time.Second, Duration: 2 * time.Minute,
				Target: "phone", Peer: "bt-gps-1", Medium: radio.MediumBT,
			},
			during: MechanismAdHoc, after: MechanismLocal,
		},
		{
			name:       "wifi-partition",
			src:        "SELECT location FROM entity(peer) DURATION 30 min EVERY 10 sec",
			infraStore: true,
			fault: chaos.Fault{
				ID: "fault-0000", Kind: chaos.KindPartition,
				At: 155 * time.Second, Duration: 2 * time.Minute,
				Target: "phone", Medium: radio.MediumWiFi, Nodes: []string{"phone"},
			},
			during: MechanismInfra, after: MechanismAdHoc,
		},
		{
			name:       "provider-hang",
			src:        "SELECT location FROM entity(peer) DURATION 30 min EVERY 10 sec",
			infraStore: true,
			fault: chaos.Fault{
				ID: "fault-0000", Kind: chaos.KindProviderHang,
				At: 155 * time.Second, Duration: 2 * time.Minute,
				Target: "peer", Medium: radio.MediumWiFi, Severity: 1,
			},
			during: MechanismInfra, after: MechanismAdHoc,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := newBed(t)
			b.peer.WiFi.PublishTag("location", locItem(b.clk.Now()), 0)
			if tc.infraStore {
				b.store = append(b.store, locItem(b.clk.Now()))
			}
			start := b.clk.Now()
			faults := []chaos.Fault{tc.fault}
			in := chaos.NewInjector(b.nw, chaos.SimClock{C: b.clk}, b.factory.Metrics(),
				b.chaosTargets(), faults)
			in.Install()

			cli := &testClient{}
			sub, err := b.factory.ProcessCxtQuery(query.MustParse(tc.src), cli)
			if err != nil {
				t.Fatal(err)
			}
			preferred, _ := sub.Mechanism()

			// Phase 1: healthy until the fault lands at t=155 s.
			b.clk.Advance(150 * time.Second)
			phase1 := len(cli.items)
			if phase1 == 0 {
				t.Fatal("no deliveries before the fault")
			}
			// Phase 2: the fault is active (plus slack for the failure to
			// surface through request timeouts).
			b.clk.Advance(2 * time.Minute)
			if mech, _ := sub.Mechanism(); mech != tc.during {
				t.Fatalf("mechanism during fault = %v, want %v", mech, tc.during)
			}
			phase2 := len(cli.items)
			if phase2 <= phase1 {
				t.Fatal("delivery stopped during the fault: failover did not keep data flowing")
			}
			// Phase 3: the fault cleared at t=275 s; the recovery probe fails
			// back to the preferred mechanism.
			b.clk.Advance(4 * time.Minute)
			if mech, _ := sub.Mechanism(); mech != tc.after {
				t.Fatalf("mechanism after clear = %v, want %v", mech, tc.after)
			}
			if tc.after != preferred {
				t.Fatalf("case expects fail-back to %v but the query prefers %v", tc.after, preferred)
			}
			if len(cli.items) <= phase2 {
				t.Fatal("no deliveries after fail-back")
			}

			// Every switch is attributable to the injected fault.
			sws := b.factory.Switches()
			if len(sws) < 2 {
				t.Fatalf("switches = %+v, want failover and fail-back", sws)
			}
			var csw []chaos.Switch
			for _, s := range sws {
				csw = append(csw, chaos.Switch{At: s.At, Query: s.QueryID, Reason: s.Reason})
			}
			att := chaos.Attribute(start, faults, csw, chaos.DefaultGrace)
			if len(att.Unattributed) != 0 {
				t.Fatalf("unattributed switches: %+v", att.Unattributed)
			}

			// Event ordering in the shared ring: the injection precedes the
			// first failure-driven switch.
			events := b.factory.Metrics().Snapshot().Events
			injectedAt, switchedAt := -1, -1
			for i, ev := range events {
				if ev.Kind == metrics.EventFaultInjected && injectedAt < 0 {
					injectedAt = i
				}
				if ev.Kind == metrics.EventSwitched && switchedAt < 0 &&
					strings.Contains(ev.Detail, "failure") {
					switchedAt = i
				}
			}
			if injectedAt < 0 || switchedAt < 0 {
				t.Fatalf("ring lacks fault/switch events (injected=%d switched=%d)", injectedAt, switchedAt)
			}
			if injectedAt > switchedAt {
				t.Fatalf("fault-injected at ring index %d after its switched event at %d", injectedAt, switchedAt)
			}
		})
	}
}

// chaosTargets exposes the bed's devices in the injector's shape.
func (b *bed) chaosTargets() []chaos.Target {
	return []chaos.Target{
		{ID: "phone", GPSNode: "bt-gps-1", GPS: b.gpsDev, SetBattery: b.dev.Monitor.SetBattery},
		{ID: "peer", SetBattery: b.peer.Monitor.SetBattery},
		{ID: "far"},
	}
}
