package timeline

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Derived metric names an SLO can watch. Beyond these, "counter:<name>"
// watches any counter's per-window rate (units 1/s) and "gauge:<name>" any
// gauge's last value.
const (
	MetricP99FirstItemMs = "p99_first_item_ms"
	MetricCacheHitRatio  = "cache_hit_ratio"
	MetricJoulesPerItem  = "joules_per_item"
	MetricShedRate       = "qos_shed_rate"
)

// SLO is one declarative objective: the objective holds while
// Metric Op Threshold is true in a window ("<" for latency/cost ceilings,
// ">" for ratio floors). Windows without data for the metric are neither
// compliant nor violating — they do not feed the burn rate.
type SLO struct {
	// Name labels the objective in alerts and summaries (defaults to the
	// spec string, e.g. "p99_first_item_ms<5000").
	Name string `json:"name,omitempty"`
	// Metric is a derived metric name, "counter:<name>" or "gauge:<name>".
	Metric string `json:"metric"`
	// Op is "<" or ">".
	Op string `json:"op"`
	// Threshold is the objective's bound.
	Threshold float64 `json:"threshold"`
}

// String renders the objective in the -slo flag syntax.
func (s SLO) String() string {
	return s.Metric + s.Op + strconv.FormatFloat(s.Threshold, 'g', -1, 64)
}

// normalized fills the default name.
func (s SLO) normalized() SLO {
	if s.Name == "" {
		s.Name = s.String()
	}
	return s
}

// Validate rejects malformed objectives.
func (s SLO) Validate() error {
	if s.Op != "<" && s.Op != ">" {
		return fmt.Errorf("timeline: slo %q: op must be < or >, got %q", s.Name, s.Op)
	}
	if math.IsNaN(s.Threshold) || math.IsInf(s.Threshold, 0) {
		return fmt.Errorf("timeline: slo %q: threshold must be finite", s.Name)
	}
	m := s.Metric
	switch m {
	case MetricP99FirstItemMs, MetricCacheHitRatio, MetricJoulesPerItem, MetricShedRate:
		return nil
	}
	if name, ok := strings.CutPrefix(m, "counter:"); ok && name != "" {
		return nil
	}
	if name, ok := strings.CutPrefix(m, "gauge:"); ok && name != "" {
		return nil
	}
	return fmt.Errorf("timeline: slo %q: unknown metric %q (want %s, %s, %s, %s, counter:<name> or gauge:<name>)",
		s.Name, m, MetricP99FirstItemMs, MetricCacheHitRatio, MetricJoulesPerItem, MetricShedRate)
}

// holds reports whether value satisfies the objective.
func (s SLO) holds(value float64) bool {
	if s.Op == ">" {
		return value > s.Threshold
	}
	return value < s.Threshold
}

// worse reports whether a is a worse value than b under the objective's
// direction (ties keep the earlier window).
func (s SLO) worse(a, b float64) bool {
	if s.Op == ">" {
		return a < b
	}
	return a > b
}

// ParseSLO parses one "-slo" objective, e.g. "p99_first_item_ms<5000" or
// "cache_hit_ratio>0.5". An optional "name=" prefix labels it:
// "latency=p99_first_item_ms<5000".
func ParseSLO(spec string) (SLO, error) {
	s := SLO{Name: strings.TrimSpace(spec)}
	body := s.Name
	if name, rest, ok := strings.Cut(body, "="); ok {
		s.Name = strings.TrimSpace(name)
		body = strings.TrimSpace(rest)
	}
	i := strings.IndexAny(body, "<>")
	if i <= 0 {
		return SLO{}, fmt.Errorf("timeline: slo %q: want <metric><op><threshold> with op < or >", spec)
	}
	s.Metric = strings.TrimSpace(body[:i])
	s.Op = string(body[i])
	v, err := strconv.ParseFloat(strings.TrimSpace(body[i+1:]), 64)
	if err != nil {
		return SLO{}, fmt.Errorf("timeline: slo %q: bad threshold: %v", spec, err)
	}
	s.Threshold = v
	if err := s.Validate(); err != nil {
		return SLO{}, err
	}
	return s, nil
}

// ParseSLOList parses a comma-separated "-slo" flag value ("" is empty).
func ParseSLOList(list string) ([]SLO, error) {
	if strings.TrimSpace(list) == "" {
		return nil, nil
	}
	var out []SLO
	for _, part := range strings.Split(list, ",") {
		s, err := ParseSLO(part)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// MetricValue extracts one metric from the window: the value and whether
// the window has data for it (ratios without a denominator do not).
func (w Window) MetricValue(metric string) (float64, bool) {
	switch metric {
	case MetricP99FirstItemMs:
		return w.Derived.P99FirstItemMs, w.Derived.FirstItemCount > 0
	case MetricCacheHitRatio:
		return w.Derived.CacheHitRatio, w.Derived.CacheLookups > 0
	case MetricJoulesPerItem:
		return w.Derived.JoulesPerItem, w.Derived.ItemsDelivered > 0
	case MetricShedRate:
		return w.Derived.ShedRate, w.Derived.QueriesSubmitted > 0
	}
	if name, ok := strings.CutPrefix(metric, "counter:"); ok {
		for _, c := range w.Counters {
			if c.Name == name {
				return c.PerSec, true
			}
		}
		return 0, true // a counter with no activity has rate 0
	}
	if name, ok := strings.CutPrefix(metric, "gauge:"); ok {
		for _, g := range w.Gauges {
			if g.Name == name {
				return g.Value, true
			}
		}
		return 0, true // an absent gauge reads 0
	}
	return 0, false
}
