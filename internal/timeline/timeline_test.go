package timeline

import (
	"strings"
	"testing"
	"time"

	"contory/internal/audit"
	"contory/internal/metrics"
	"contory/internal/vclock"
)

// harness wires a recorder to a fresh simulator and registry.
func harness(cfg Config) (*vclock.Simulator, *metrics.Registry, *Recorder) {
	sim := vclock.NewSimulator()
	reg := metrics.NewRegistry()
	r := New(sim, reg, cfg)
	return sim, reg, r
}

func TestSamplerWindows(t *testing.T) {
	sim, reg, r := harness(Config{Interval: 10 * time.Second})
	// Pre-install activity must land in the baseline, not window 0.
	reg.Counter("core.query.submitted").Add(100)
	r.Install()

	hist := reg.Histogram("core.query.first_item_latency_ms.adhoc", []float64{10, 100, 1000})
	sim.After(1*time.Second, func() {
		reg.Counter("core.query.submitted").Add(5)
		reg.Counter("core.query.items_delivered").Add(20)
		reg.Counter("core.cache.hits").Add(3)
		reg.Counter("core.cache.misses").Add(1)
		reg.Gauge("qos.pending").Set(7)
		reg.Gauge("energy.joules.p00001").Set(2.5)
		hist.Observe(50)
		hist.Observe(60)
	})
	// Window 1: the pending gauge drains and nothing else moves.
	sim.After(11*time.Second, func() { reg.Gauge("qos.pending").Set(0) })
	sim.AdvanceTo(vclock.Epoch.Add(25 * time.Second))
	r.Stop()

	rep := r.Report()
	if rep.WindowsTotal != 2 || len(rep.Windows) != 2 {
		t.Fatalf("got %d windows (%d retained), want 2", rep.WindowsTotal, len(rep.Windows))
	}
	w0 := rep.Windows[0]
	if w0.Start != vclock.Epoch || w0.End != vclock.Epoch.Add(10*time.Second) {
		t.Fatalf("window 0 spans %v..%v", w0.Start, w0.End)
	}
	// The baseline absorbed the pre-install 100: only the +5 shows.
	var submitted *Rate
	for i := range w0.Counters {
		if w0.Counters[i].Name == "core.query.submitted" {
			submitted = &w0.Counters[i]
		}
	}
	if submitted == nil || submitted.Delta != 5 || submitted.PerSec != 0.5 {
		t.Fatalf("submitted rate = %+v, want delta 5 rate 0.5", submitted)
	}
	d := w0.Derived
	if d.QueriesSubmitted != 5 || d.ItemsDelivered != 20 || d.FirstItemCount != 2 {
		t.Fatalf("derived counts = %+v", d)
	}
	if d.CacheLookups != 4 || d.CacheHitRatio != 0.75 {
		t.Fatalf("cache ratio = %v over %d lookups, want 0.75 over 4", d.CacheHitRatio, d.CacheLookups)
	}
	if d.Joules != 2.5 || d.JoulesPerItem != 2.5/20 {
		t.Fatalf("joules = %v per item %v", d.Joules, d.JoulesPerItem)
	}
	if d.QoSPending != 7 {
		t.Fatalf("qos pending = %v, want 7", d.QoSPending)
	}
	if d.P99FirstItemMs <= 10 || d.P99FirstItemMs > 100 {
		t.Fatalf("window p99 = %v, want within (10,100]", d.P99FirstItemMs)
	}
	if len(w0.Quantiles) != 1 || w0.Quantiles[0].Count != 2 {
		t.Fatalf("quantile points = %+v, want one with count 2", w0.Quantiles)
	}

	// Window 1 carries only the gauge's return-to-zero transition.
	w1 := rep.Windows[1]
	if len(w1.Counters) != 0 || len(w1.Quantiles) != 0 {
		t.Fatalf("idle window has activity: %+v", w1)
	}
	found := false
	for _, g := range w1.Gauges {
		if g.Name == "qos.pending" && g.Value == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("gauge zero-transition missing from window 1: %+v", w1.Gauges)
	}
}

func TestSamplerStopsAfterStop(t *testing.T) {
	sim, _, r := harness(Config{Interval: time.Second})
	r.Install()
	sim.AdvanceTo(vclock.Epoch.Add(3 * time.Second))
	r.Stop()
	sim.AdvanceTo(vclock.Epoch.Add(10 * time.Second))
	if rep := r.Report(); rep.WindowsTotal != 3 {
		t.Fatalf("got %d windows after stop, want 3", rep.WindowsTotal)
	}
}

func TestWindowRingBounds(t *testing.T) {
	sim, _, r := harness(Config{Interval: time.Second, MaxWindows: 4})
	r.Install()
	sim.AdvanceTo(vclock.Epoch.Add(10 * time.Second))
	r.Stop()
	rep := r.Report()
	if rep.WindowsTotal != 10 || rep.WindowsDropped != 6 || len(rep.Windows) != 4 {
		t.Fatalf("ring accounting total %d dropped %d retained %d, want 10/6/4",
			rep.WindowsTotal, rep.WindowsDropped, len(rep.Windows))
	}
	for i, w := range rep.Windows {
		if w.Index != 6+i {
			t.Fatalf("retained window %d has index %d, want %d (newest, oldest first)", i, w.Index, 6+i)
		}
	}
}

func TestBurnRateFireExtendClear(t *testing.T) {
	sim, reg, r := harness(Config{
		Interval: 10 * time.Second,
		SLOs:     []SLO{{Name: "shed", Metric: MetricShedRate, Op: "<", Threshold: 0.5}},
		// Fire after 2 consecutive violating windows at >= 50% of the lookback.
		BurnShort: 2, BurnLong: 4, BurnRate: 0.5,
	})
	r.Install()
	step := func(shedding bool) {
		reg.Counter("core.query.submitted").Add(10)
		if shedding {
			reg.Counter("qos.shed").Add(10)
		}
	}
	// Windows: ok, bad, bad(fire), bad(extend), ok(clear), no-data.
	plan := []string{"ok", "bad", "bad", "bad", "ok", "idle"}
	for i, p := range plan {
		p := p
		sim.After(time.Duration(i)*10*time.Second+time.Second, func() {
			if p != "idle" {
				step(p == "bad")
			}
		})
	}
	sim.AdvanceTo(vclock.Epoch.Add(65 * time.Second))
	r.Stop()

	rep := r.Report()
	if len(rep.Alerts) != 1 {
		t.Fatalf("got %d alerts, want exactly 1 (episode must not re-fire): %+v", len(rep.Alerts), rep.Alerts)
	}
	a := rep.Alerts[0]
	if a.Window != 2 {
		t.Fatalf("alert fired at window %d, want 2 (second consecutive violation)", a.Window)
	}
	if a.Value != 1 || a.BurnRate != 2.0/3.0 {
		t.Fatalf("alert value %v burn %v, want 1 and 2/3", a.Value, a.BurnRate)
	}
	// The episode extended through window 3.
	if want := vclock.Epoch.Add(40 * time.Second); !a.WindowEnd.Equal(want) {
		t.Fatalf("episode end %v, want %v", a.WindowEnd, want)
	}
	// SLO table: windows 0..4 evaluated (5 had no submissions), 3 violating.
	if len(rep.SLOs) != 1 {
		t.Fatalf("got %d slo summaries", len(rep.SLOs))
	}
	s := rep.SLOs[0]
	if s.Evaluated != 5 || s.Violating != 3 || s.Alerts != 1 {
		t.Fatalf("slo summary = %+v, want 5 evaluated, 3 violating, 1 alert", s)
	}
	if s.WorstWindow != 1 || s.WorstValue != 1 {
		t.Fatalf("worst window %d value %v, want first worst window 1 at value 1", s.WorstWindow, s.WorstValue)
	}
	// The alert and clear landed in the event ring.
	var fired, cleared bool
	for _, ev := range reg.Events().Events() {
		switch ev.Kind {
		case metrics.EventSLOAlert:
			fired = true
		case metrics.EventSLOClear:
			cleared = true
		}
	}
	if !fired || !cleared {
		t.Fatalf("event ring missing alert/clear records (fired=%v cleared=%v)", fired, cleared)
	}
}

func TestAlertFaultAttribution(t *testing.T) {
	sim, reg, r := harness(Config{
		Interval: 10 * time.Second,
		SLOs:     []SLO{{Metric: MetricShedRate, Op: "<", Threshold: 0.5}},
	})
	r.Install()
	r.SetFaults([]FaultSpan{
		{ID: "f-01", Kind: "partition", Target: "p00002",
			From: vclock.Epoch.Add(5 * time.Second), Until: vclock.Epoch.Add(15 * time.Second)},
		{ID: "f-99", Kind: "crash", Target: "p00009",
			From: vclock.Epoch.Add(300 * time.Second), Until: vclock.Epoch.Add(310 * time.Second)},
	})
	sim.After(time.Second, func() {
		reg.Counter("core.query.submitted").Add(4)
		reg.Counter("qos.shed").Add(4)
	})
	sim.AdvanceTo(vclock.Epoch.Add(12 * time.Second))
	r.Stop()

	rep := r.Report()
	if len(rep.Alerts) != 1 {
		t.Fatalf("got %d alerts, want 1", len(rep.Alerts))
	}
	causes := rep.Alerts[0].Causes
	if len(causes) != 1 || causes[0] != "fault f-01 partition p00002" {
		t.Fatalf("causes = %v, want exactly the overlapping partition fault", causes)
	}
}

func TestAttributeAudit(t *testing.T) {
	sim, reg, r := harness(Config{
		Interval: 10 * time.Second,
		SLOs:     []SLO{{Metric: MetricShedRate, Op: "<", Threshold: 0.5}},
	})
	r.Install()
	sim.After(time.Second, func() {
		reg.Counter("core.query.submitted").Add(2)
		reg.Counter("qos.shed").Add(2)
	})
	sim.AdvanceTo(vclock.Epoch.Add(12 * time.Second))
	r.Stop()

	r.AttributeAudit([]audit.Violation{
		{At: vclock.Epoch.Add(3 * time.Second), Law: "slot-conservation"},
		{At: vclock.Epoch.Add(7 * time.Second), Law: "slot-conservation"},
		{At: vclock.Epoch.Add(99 * time.Second), Law: "gauge-drift"}, // outside the episode
	})
	rep := r.Report()
	if len(rep.Alerts) != 1 {
		t.Fatalf("got %d alerts, want 1", len(rep.Alerts))
	}
	causes := strings.Join(rep.Alerts[0].Causes, "; ")
	if !strings.Contains(causes, "audit:slot-conservation x2") {
		t.Fatalf("causes %q missing the in-window audit attribution", causes)
	}
	if strings.Contains(causes, "gauge-drift") {
		t.Fatalf("causes %q include an out-of-window violation", causes)
	}
}

func TestParseSLO(t *testing.T) {
	cases := []struct {
		spec    string
		want    SLO
		wantErr bool
	}{
		{spec: "p99_first_item_ms<5000",
			want: SLO{Name: "p99_first_item_ms<5000", Metric: MetricP99FirstItemMs, Op: "<", Threshold: 5000}},
		{spec: "cache_hit_ratio>0.25",
			want: SLO{Name: "cache_hit_ratio>0.25", Metric: MetricCacheHitRatio, Op: ">", Threshold: 0.25}},
		{spec: "latency = p99_first_item_ms < 250",
			want: SLO{Name: "latency", Metric: MetricP99FirstItemMs, Op: "<", Threshold: 250}},
		{spec: "counter:qos.shed<1",
			want: SLO{Name: "counter:qos.shed<1", Metric: "counter:qos.shed", Op: "<", Threshold: 1}},
		{spec: "gauge:qos.pending<32",
			want: SLO{Name: "gauge:qos.pending<32", Metric: "gauge:qos.pending", Op: "<", Threshold: 32}},
		{spec: "p99_first_item_ms=5000", wantErr: true}, // no op
		{spec: "<5000", wantErr: true},                  // no metric
		{spec: "p99_first_item_ms<abc", wantErr: true},  // bad threshold
		{spec: "bogus_metric<1", wantErr: true},         // unknown metric
		{spec: "counter:<1", wantErr: true},             // empty counter name
		{spec: "joules_per_item<", wantErr: true},       // empty threshold
	}
	for _, tc := range cases {
		got, err := ParseSLO(tc.spec)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseSLO(%q) = %+v, want error", tc.spec, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSLO(%q): %v", tc.spec, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseSLO(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
	}

	list, err := ParseSLOList("p99_first_item_ms<5000, cache_hit_ratio>0.5")
	if err != nil || len(list) != 2 {
		t.Fatalf("ParseSLOList = %v, %v; want 2 objectives", list, err)
	}
	if empty, err := ParseSLOList("  "); err != nil || empty != nil {
		t.Fatalf("ParseSLOList(blank) = %v, %v; want nil, nil", empty, err)
	}
	if _, err := ParseSLOList("p99_first_item_ms<5000,junk"); err == nil {
		t.Fatalf("ParseSLOList with a bad entry did not error")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config must validate (defaults apply): %v", err)
	}
	if err := (Config{Interval: -time.Second}).Validate(); err == nil {
		t.Fatalf("negative interval passed validation")
	}
	bad := Config{SLOs: []SLO{{Metric: "bogus", Op: "<", Threshold: 1}}}
	if err := bad.Validate(); err == nil {
		t.Fatalf("bogus slo metric passed validation")
	}
}

func TestChromeExtrasAndRender(t *testing.T) {
	sim, reg, r := harness(Config{
		Interval: 10 * time.Second,
		SLOs:     []SLO{{Metric: MetricShedRate, Op: "<", Threshold: 0.5}},
	})
	r.Install()
	sim.After(time.Second, func() {
		reg.Counter("core.query.submitted").Add(4)
		reg.Counter("qos.shed").Add(4)
	})
	sim.AdvanceTo(vclock.Epoch.Add(22 * time.Second))
	r.Stop()
	rep := r.Report()

	ex := ChromeExtras(rep)
	tracks := make(map[string]int)
	for _, c := range ex.Counters {
		tracks[c.Track]++
	}
	// Two windows: active series sample both, all-zero series are skipped.
	if tracks["queries_per_sec"] != 2 || tracks["qos_shed_rate"] != 2 {
		t.Fatalf("active tracks missing samples: %v", tracks)
	}
	if _, ok := tracks["cache_hit_ratio"]; ok {
		t.Fatalf("all-zero cache track exported: %v", tracks)
	}
	if len(ex.Instants) != 1 || !strings.HasPrefix(ex.Instants[0].Name, "ALERT ") {
		t.Fatalf("instants = %+v, want one ALERT marker", ex.Instants)
	}

	text := RenderText(rep)
	for _, want := range []string{"timeline: 2 windows x 10s", "slo objectives", "alerts", "qos_shed_rate<0.5"} {
		if !strings.Contains(text, want) {
			t.Fatalf("RenderText output missing %q:\n%s", want, text)
		}
	}
}
