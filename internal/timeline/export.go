package timeline

import (
	"fmt"
	"strings"
	"time"

	"contory/internal/trace"
	"contory/internal/tracing"
)

// chromeTracks are the derived series exported as Perfetto counter tracks,
// in display order. Series that are zero in every retained window are
// skipped so idle subsystems do not clutter the trace.
var chromeTracks = []struct {
	track string
	value func(Window) float64
}{
	{"queries_per_sec", func(w Window) float64 { return w.Derived.QueriesPerSec }},
	{"items_per_sec", func(w Window) float64 { return w.Derived.ItemsPerSec }},
	{"p99_first_item_ms", func(w Window) float64 { return w.Derived.P99FirstItemMs }},
	{"cache_hit_ratio", func(w Window) float64 { return w.Derived.CacheHitRatio }},
	{"joules_per_item", func(w Window) float64 { return w.Derived.JoulesPerItem }},
	{"qos_shed_rate", func(w Window) float64 { return w.Derived.ShedRate }},
	{"qos_pending", func(w Window) float64 { return w.Derived.QoSPending }},
}

// ChromeExtras converts the report into the counter/instant tracks of the
// combined Chrome trace export: one counter track per derived series
// (sampled at each window's end) and one global instant per fired alert,
// so Perfetto shows the metric timelines and alert markers aligned under
// the span rows.
func ChromeExtras(rep Report) tracing.ChromeExtras {
	ex := tracing.ChromeExtras{Process: "timeline"}
	for _, s := range chromeTracks {
		samples := make([]tracing.CounterSample, 0, len(rep.Windows))
		allZero := true
		for _, w := range rep.Windows {
			v := s.value(w)
			if v != 0 {
				allZero = false
			}
			samples = append(samples, tracing.CounterSample{Track: s.track, At: w.End, Value: v})
		}
		if allZero {
			continue
		}
		ex.Counters = append(ex.Counters, samples...)
	}
	for _, a := range rep.Alerts {
		ex.Instants = append(ex.Instants, tracing.InstantSample{
			Name:   "ALERT " + a.SLO,
			At:     a.At,
			Detail: strings.Join(a.Causes, "; "),
		})
	}
	return ex
}

// Describe renders the one-line run summary harnesses print.
func Describe(rep Report) string {
	s := fmt.Sprintf("timeline: %d windows x %s", rep.WindowsTotal, rep.Interval)
	if rep.WindowsDropped > 0 {
		s += fmt.Sprintf(" (%d dropped)", rep.WindowsDropped)
	}
	if len(rep.SLOs) > 0 {
		n := len(rep.Alerts) + rep.AlertsDropped
		s += fmt.Sprintf(", %d slo", len(rep.SLOs))
		if n == 0 {
			s += ", no alerts"
		} else {
			s += fmt.Sprintf(", %d alerts", n)
			if rep.AlertsDropped > 0 {
				s += fmt.Sprintf(" (%d dropped)", rep.AlertsDropped)
			}
		}
	}
	return s
}

// offset renders a virtual instant as an offset from the recorder start.
func offset(start time.Time, t time.Time) string {
	return fmt.Sprintf("+%s", t.Sub(start))
}

// RenderText renders the report as text: the per-SLO worst-window table
// followed by the alert log with cause attributions.
func RenderText(rep Report) string {
	var b strings.Builder
	b.WriteString(Describe(rep))
	b.WriteByte('\n')
	if len(rep.SLOs) > 0 {
		t := trace.Table{
			Title:   "slo objectives (worst window per objective)",
			Headers: []string{"slo", "evaluated", "violating", "alerts", "worst window", "worst value"},
		}
		for _, s := range rep.SLOs {
			worstWin, worstVal := "-", "-"
			if s.WorstWindow >= 0 {
				worstWin = fmt.Sprintf("%d %s", s.WorstWindow, offset(rep.Start, s.WorstAt))
				worstVal = fmt.Sprintf("%g", s.WorstValue)
			}
			t.Add(s.Name, fmt.Sprintf("%d", s.Evaluated), fmt.Sprintf("%d", s.Violating),
				fmt.Sprintf("%d", s.Alerts), worstWin, worstVal)
		}
		b.WriteString(t.String())
	}
	if len(rep.Alerts) > 0 {
		t := trace.Table{
			Title:   "alerts",
			Headers: []string{"at", "slo", "value", "burn", "episode", "causes"},
		}
		for _, a := range rep.Alerts {
			causes := strings.Join(a.Causes, "; ")
			if causes == "" {
				causes = "-"
			}
			t.Add(offset(rep.Start, a.At), a.SLO, fmt.Sprintf("%g", a.Value),
				fmt.Sprintf("%.2f", a.BurnRate),
				fmt.Sprintf("%s..%s", offset(rep.Start, a.WindowStart), offset(rep.Start, a.WindowEnd)),
				causes)
		}
		b.WriteString(t.String())
	}
	return b.String()
}
