// Package timeline is Contory's deterministic flight recorder: a
// vclock-driven sampler that scrapes a metrics.Registry every Interval of
// virtual time into a bounded ring of delta-windows, evaluates declarative
// SLOs per window, and fires multi-window burn-rate alerts whose cause
// attribution joins the alert window against active chaos faults and audit
// violations.
//
// Sampling ticks are scheduled on the run's virtual clock; on a sharded
// world the recorder hangs off the simulator's global lane, so every tick
// runs as a barrier between lane batches exactly like chaos injections and
// churn scripts. A window is therefore a pure function of the seed: counters
// become per-window rates, gauges last-values, histograms per-window
// quantile points via metrics.HistogramPoint.Delta — byte-identical at any
// worker count or GOMAXPROCS.
package timeline

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"contory/internal/audit"
	"contory/internal/metrics"
	"contory/internal/vclock"
)

// Clock is the slice of the virtual clock the recorder schedules on. Both
// *vclock.Simulator (global-lane barriers; what fleets use) and a device's
// lane clock satisfy it.
type Clock interface {
	Now() time.Time
	After(d time.Duration, fn func()) *vclock.Timer
}

// Config configures a Recorder.
type Config struct {
	// Interval is the virtual time between samples (default 10s).
	Interval time.Duration `json:"interval"`
	// MaxWindows bounds the retained window ring (default 512); older
	// windows are dropped and counted in Report.WindowsDropped.
	MaxWindows int `json:"max_windows"`
	// SLOs are the objectives evaluated against every window.
	SLOs []SLO `json:"slos,omitempty"`
	// BurnShort is how many consecutive violating windows (including the
	// current one) must precede an alert (default 1).
	BurnShort int `json:"burn_short"`
	// BurnLong is the lookback length in windows for the burn fraction
	// (default 6).
	BurnLong int `json:"burn_long"`
	// BurnRate is the violating fraction of evaluated windows over the
	// lookback at or above which an alert fires (default 0.5).
	BurnRate float64 `json:"burn_rate"`
	// MaxAlerts bounds the alert log (default 256).
	MaxAlerts int `json:"max_alerts"`
}

// withDefaults returns a copy with defaults applied.
func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 10 * time.Second
	}
	if c.MaxWindows <= 0 {
		c.MaxWindows = 512
	}
	if c.BurnShort <= 0 {
		c.BurnShort = 1
	}
	if c.BurnLong < c.BurnShort {
		c.BurnLong = 6
		if c.BurnLong < c.BurnShort {
			c.BurnLong = c.BurnShort
		}
	}
	if c.BurnRate <= 0 {
		c.BurnRate = 0.5
	}
	if c.MaxAlerts <= 0 {
		c.MaxAlerts = 256
	}
	return c
}

// Validate rejects configurations a Recorder would silently normalize:
// harnesses call it so typos in SLO specs fail loudly.
func (c Config) Validate() error {
	if c.Interval < 0 {
		return fmt.Errorf("timeline: interval %v < 0", c.Interval)
	}
	for _, s := range c.SLOs {
		if err := s.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Rate is one counter's per-window activity: the raw delta and its rate
// over the window. Counters with no activity in the window are omitted.
type Rate struct {
	Name   string  `json:"name"`
	Delta  int64   `json:"delta"`
	PerSec float64 `json:"per_sec"`
}

// GaugeValue is one gauge's last value in a window. Gauges that are zero
// now and were zero at the previous sample are omitted.
type GaugeValue struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// QuantilePoint is one histogram's per-window quantile summary, computed
// on the delta histogram (only the window's observations). Histograms with
// no observations in the window are omitted.
type QuantilePoint struct {
	Name  string  `json:"name"`
	Count int64   `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// Derived is the window's pre-joined metric set the SLO engine evaluates:
// the cross-instrument ratios a single counter or gauge cannot express.
// Every ratio carries its denominator so "no data" (denominator zero,
// value reported as 0) is distinguishable from a true zero.
type Derived struct {
	QueriesSubmitted int64   `json:"queries_submitted"`
	QueriesPerSec    float64 `json:"queries_per_sec"`
	ItemsDelivered   int64   `json:"items_delivered"`
	ItemsPerSec      float64 `json:"items_per_sec"`
	FirstItemCount   int64   `json:"first_item_count"`
	P99FirstItemMs   float64 `json:"p99_first_item_ms"`
	CacheLookups     int64   `json:"cache_lookups"`
	CacheHitRatio    float64 `json:"cache_hit_ratio"`
	Joules           float64 `json:"joules"`
	JoulesPerItem    float64 `json:"joules_per_item"`
	ShedRate         float64 `json:"qos_shed_rate"`
	QoSPending       float64 `json:"qos_pending"`
	EventsDropped    uint64  `json:"events_dropped"`
}

// Window is one sampled delta-window of the flight recorder.
type Window struct {
	Index     int             `json:"index"`
	Start     time.Time       `json:"start"`
	End       time.Time       `json:"end"`
	Counters  []Rate          `json:"counters,omitempty"`
	Gauges    []GaugeValue    `json:"gauges,omitempty"`
	Quantiles []QuantilePoint `json:"quantiles,omitempty"`
	Derived   Derived         `json:"derived"`
}

// FaultSpan is one chaos fault's attribution window in absolute virtual
// time (clear time extended by the attribution grace), in the shape the
// recorder can consume without importing chaos.
type FaultSpan struct {
	ID     string    `json:"id"`
	Kind   string    `json:"kind"`
	Target string    `json:"target,omitempty"`
	From   time.Time `json:"from"`
	Until  time.Time `json:"until"`
}

// label renders the span as an alert cause.
func (f FaultSpan) label() string {
	s := "fault " + f.ID + " " + f.Kind
	if f.Target != "" {
		s += " " + f.Target
	}
	return s
}

// Alert is one fired burn-rate alert. Window/WindowStart mark the firing
// window; WindowEnd extends over the episode while the objective keeps
// violating, and Causes accumulates every fault whose span overlaps a
// violating window of the episode (plus, post-run, the audit violations
// inside it).
type Alert struct {
	At          time.Time `json:"at"`
	SLO         string    `json:"slo"`
	Metric      string    `json:"metric"`
	Op          string    `json:"op"`
	Threshold   float64   `json:"threshold"`
	Value       float64   `json:"value"`
	BurnRate    float64   `json:"burn_rate"`
	Window      int       `json:"window"`
	WindowStart time.Time `json:"window_start"`
	WindowEnd   time.Time `json:"window_end"`
	Causes      []string  `json:"causes,omitempty"`
}

// SLOSummary is one objective's worst-window row of the report table.
type SLOSummary struct {
	SLO
	Evaluated   int       `json:"evaluated"`
	Violating   int       `json:"violating"`
	Alerts      int       `json:"alerts"`
	WorstWindow int       `json:"worst_window"`
	WorstAt     time.Time `json:"worst_at"`
	WorstValue  float64   `json:"worst_value"`
}

// Report is the recorder's exportable outcome: the retained windows, the
// alert log and the per-SLO worst-window table. Every field is a
// deterministic function of the run's seed.
type Report struct {
	Interval       time.Duration `json:"interval"`
	Start          time.Time     `json:"start"`
	End            time.Time     `json:"end"`
	WindowsTotal   int           `json:"windows_total"`
	WindowsDropped int           `json:"windows_dropped"`
	Windows        []Window      `json:"windows"`
	SLOs           []SLOSummary  `json:"slos,omitempty"`
	Alerts         []Alert       `json:"alerts,omitempty"`
	AlertsDropped  int           `json:"alerts_dropped,omitempty"`
}

// outcome is one window's SLO evaluation result.
type outcome struct {
	evaluated bool
	violated  bool
}

// sloState is one objective's burn-rate machinery.
type sloState struct {
	slo       SLO
	recent    []outcome // last BurnLong outcomes, oldest first
	active    bool      // an alert episode is open
	alertIdx  int       // index into Recorder.alerts of the open episode
	evaluated int
	violating int
	alerts    int
	worstSet  bool
	worstWin  int
	worstAt   time.Time
	worstVal  float64
}

// Recorder is the flight recorder: build with New, arm with Install, read
// with Report. All sampling state is guarded by one mutex; ticks execute
// on the virtual clock (as global barriers in fleet runs), Report after
// the clock stops.
type Recorder struct {
	cfg   Config
	clk   Clock
	reg   *metrics.Registry
	mu    sync.Mutex
	start time.Time

	installed bool
	stopped   bool

	prevAt       time.Time
	prevCounters map[string]int64
	prevGauges   map[string]float64
	prevHists    map[string]metrics.HistogramPoint
	prevDropped  uint64

	windows  []Window // ring, oldest at winStart
	winStart int
	total    int
	dropped  int

	faults        []FaultSpan
	states        []*sloState
	alerts        []Alert
	alertsDropped int
}

// New builds a recorder over reg, sampling on clk. The config is
// normalized (call Config.Validate first to reject rather than normalize).
func New(clk Clock, reg *metrics.Registry, cfg Config) *Recorder {
	cfg = cfg.withDefaults()
	r := &Recorder{
		cfg:          cfg,
		clk:          clk,
		reg:          reg,
		prevCounters: make(map[string]int64),
		prevGauges:   make(map[string]float64),
		prevHists:    make(map[string]metrics.HistogramPoint),
	}
	for _, s := range cfg.SLOs {
		r.states = append(r.states, &sloState{slo: s.normalized()})
	}
	return r
}

// Install captures the baseline snapshot and schedules the sampling ticks.
// Call once, before the run starts; installing twice is a no-op.
func (r *Recorder) Install() {
	r.mu.Lock()
	if r.installed {
		r.mu.Unlock()
		return
	}
	r.installed = true
	r.start = r.clk.Now()
	r.prevAt = r.start
	r.baselineLocked()
	r.mu.Unlock()
	r.clk.After(r.cfg.Interval, r.tick)
}

// baselineLocked seeds the previous-sample maps from the current registry
// state so the first window only covers observations after Install.
func (r *Recorder) baselineLocked() {
	snap := r.reg.Snapshot().WithoutEvents()
	for _, c := range snap.Counters {
		r.prevCounters[c.Name] = c.Value
	}
	for _, g := range snap.Gauges {
		r.prevGauges[g.Name] = g.Value
	}
	for _, h := range snap.Histograms {
		r.prevHists[h.Name] = h
	}
	r.prevDropped = snap.EventsDropped
}

// Stop freezes the recorder: pending ticks become no-ops.
func (r *Recorder) Stop() {
	r.mu.Lock()
	r.stopped = true
	r.mu.Unlock()
}

// SetFaults hands the recorder the run's fault plan in absolute time, for
// alert cause attribution. Fleet engines call it once after installing the
// chaos injector; spans should already include the attribution grace.
func (r *Recorder) SetFaults(spans []FaultSpan) {
	r.mu.Lock()
	r.faults = append([]FaultSpan(nil), spans...)
	r.mu.Unlock()
}

// tick samples one window and reschedules itself.
func (r *Recorder) tick() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.sampleLocked()
	r.mu.Unlock()
	r.clk.After(r.cfg.Interval, r.tick)
}

// sampleLocked builds the next delta-window from the registry and runs the
// SLO engine over it.
func (r *Recorder) sampleLocked() {
	now := r.clk.Now()
	snap := r.reg.Snapshot().WithoutEvents()
	w := Window{Index: r.total, Start: r.prevAt, End: now}
	secs := now.Sub(r.prevAt).Seconds()

	// Counters: per-window deltas and rates. Iteration over the sorted
	// snapshot keeps output order and float addition order fixed.
	for _, c := range snap.Counters {
		d := c.Value - r.prevCounters[c.Name]
		r.prevCounters[c.Name] = c.Value
		if d == 0 {
			continue
		}
		rate := Rate{Name: c.Name, Delta: d}
		if secs > 0 {
			rate.PerSec = float64(d) / secs
		}
		w.Counters = append(w.Counters, rate)
	}

	// Gauges: last value. A gauge appears while it is nonzero or at the
	// sample where it returns to zero, so transitions stay visible.
	var joules float64
	for _, g := range snap.Gauges {
		prev, had := r.prevGauges[g.Name]
		r.prevGauges[g.Name] = g.Value
		if strings.HasPrefix(g.Name, "energy.joules.") {
			joules += g.Value - prev
		}
		if g.Value == 0 && (!had || prev == 0) {
			continue
		}
		w.Gauges = append(w.Gauges, GaugeValue{Name: g.Name, Value: g.Value})
	}

	// Histograms: per-window quantile points over the delta histograms.
	// First-item latency deltas are also merged bucket-wise (all first-item
	// histograms share one layout, so the merge is exact) for the derived
	// fleet-wide p99.
	var merged metrics.HistogramPoint
	for _, h := range snap.Histograms {
		d := h.Delta(r.prevHists[h.Name])
		r.prevHists[h.Name] = h
		if d.Count <= 0 {
			continue
		}
		w.Quantiles = append(w.Quantiles, QuantilePoint{
			Name:  h.Name,
			Count: d.Count,
			P50:   d.Quantile(0.50),
			P90:   d.Quantile(0.90),
			P99:   d.Quantile(0.99),
			Max:   d.Max,
		})
		if strings.HasPrefix(h.Name, "core.query.first_item_latency_ms.") {
			merged = mergeHistogram(merged, d)
		}
	}

	dv := &w.Derived
	cd := func(name string) int64 {
		for _, c := range w.Counters {
			if c.Name == name {
				return c.Delta
			}
		}
		return 0
	}
	dv.QueriesSubmitted = cd("core.query.submitted")
	dv.ItemsDelivered = cd("core.query.items_delivered")
	if secs > 0 {
		dv.QueriesPerSec = float64(dv.QueriesSubmitted) / secs
		dv.ItemsPerSec = float64(dv.ItemsDelivered) / secs
	}
	dv.FirstItemCount = merged.Count
	if merged.Count > 0 {
		dv.P99FirstItemMs = merged.Quantile(0.99)
	}
	hits, misses := cd("core.cache.hits"), cd("core.cache.misses")
	dv.CacheLookups = hits + misses
	if dv.CacheLookups > 0 {
		dv.CacheHitRatio = float64(hits) / float64(dv.CacheLookups)
	}
	dv.Joules = joules
	if dv.ItemsDelivered > 0 {
		dv.JoulesPerItem = joules / float64(dv.ItemsDelivered)
	}
	if dv.QueriesSubmitted > 0 {
		dv.ShedRate = float64(cd("qos.shed")) / float64(dv.QueriesSubmitted)
	}
	dv.QoSPending = r.prevGauges["qos.pending"]
	dv.EventsDropped = snap.EventsDropped - r.prevDropped
	r.prevDropped = snap.EventsDropped
	r.prevAt = now

	r.pushWindowLocked(w)
	for _, st := range r.states {
		r.evaluateLocked(st, w)
	}
}

// mergeHistogram merges two same-layout delta histograms bucket-wise; a
// zero-count accumulator adopts b wholesale.
func mergeHistogram(a, b metrics.HistogramPoint) metrics.HistogramPoint {
	if a.Count == 0 {
		b.Buckets = append([]metrics.Bucket(nil), b.Buckets...)
		return b
	}
	if len(a.Buckets) != len(b.Buckets) {
		return a // foreign layout; keep the exact part
	}
	a.Count += b.Count
	a.Sum += b.Sum
	if b.Min < a.Min {
		a.Min = b.Min
	}
	if b.Max > a.Max {
		a.Max = b.Max
	}
	for i := range a.Buckets {
		a.Buckets[i].Count += b.Buckets[i].Count
	}
	return a
}

// pushWindowLocked appends w to the bounded ring.
func (r *Recorder) pushWindowLocked(w Window) {
	r.total++
	if len(r.windows) < r.cfg.MaxWindows {
		r.windows = append(r.windows, w)
		return
	}
	r.windows[r.winStart] = w
	r.winStart = (r.winStart + 1) % len(r.windows)
	r.dropped++
}

// evaluateLocked runs one objective's burn-rate machinery over window w.
func (r *Recorder) evaluateLocked(st *sloState, w Window) {
	value, has := w.MetricValue(st.slo.Metric)
	violated := has && !st.slo.holds(value)
	st.recent = append(st.recent, outcome{evaluated: has, violated: violated})
	if len(st.recent) > r.cfg.BurnLong {
		st.recent = st.recent[1:]
	}
	if !has {
		return
	}
	st.evaluated++
	if violated {
		st.violating++
	}
	if !st.worstSet || st.slo.worse(value, st.worstVal) {
		st.worstSet, st.worstWin, st.worstAt, st.worstVal = true, w.Index, w.End, value
	}

	if !violated {
		if st.active {
			st.active = false
			r.reg.Record(metrics.Event{
				At: w.End, Query: st.slo.Name, Kind: metrics.EventSLOClear,
				Mechanism: st.slo.Metric,
				Detail:    fmt.Sprintf("window %d: %s compliant at %g", w.Index, st.slo.Metric, value),
			})
		}
		return
	}
	if st.active {
		// The open episode extends: widen its window and union in the
		// faults overlapping this violating window.
		a := &r.alerts[st.alertIdx]
		a.WindowEnd = w.End
		a.Causes = mergeCauses(a.Causes, r.faultCausesLocked(w.Start, w.End))
		return
	}
	// Burn gate: the last BurnShort windows all violated, and the violating
	// fraction of evaluated windows over the lookback reaches BurnRate.
	consec := 0
	for i := len(st.recent) - 1; i >= 0; i-- {
		o := st.recent[i]
		if !o.evaluated {
			break
		}
		if !o.violated {
			break
		}
		consec++
	}
	if consec < r.cfg.BurnShort {
		return
	}
	eval, bad := 0, 0
	for _, o := range st.recent {
		if o.evaluated {
			eval++
			if o.violated {
				bad++
			}
		}
	}
	burn := float64(bad) / float64(eval)
	if burn < r.cfg.BurnRate {
		return
	}

	// Fire. The cause set starts with faults overlapping the burn lookback
	// (the evidence that tripped the gate), and grows while the episode
	// stays open.
	lookback := w.End.Add(-time.Duration(r.cfg.BurnLong) * r.cfg.Interval)
	alert := Alert{
		At: w.End, SLO: st.slo.Name, Metric: st.slo.Metric, Op: st.slo.Op,
		Threshold: st.slo.Threshold, Value: value, BurnRate: burn,
		Window: w.Index, WindowStart: w.Start, WindowEnd: w.End,
		Causes: r.faultCausesLocked(lookback, w.End),
	}
	st.alerts++
	st.active = true
	if len(r.alerts) >= r.cfg.MaxAlerts {
		r.alertsDropped++
		st.active = false // no episode to extend once the log is full
	} else {
		st.alertIdx = len(r.alerts)
		r.alerts = append(r.alerts, alert)
	}
	r.reg.Record(metrics.Event{
		At: w.End, Query: st.slo.Name, Kind: metrics.EventSLOAlert,
		Mechanism: st.slo.Metric,
		Detail: fmt.Sprintf("window %d: %s = %g violates %s%g (burn %.2f); causes: %s",
			w.Index, st.slo.Metric, value, st.slo.Op, st.slo.Threshold, burn,
			strings.Join(alert.Causes, "; ")),
	})
}

// faultCausesLocked lists the labels of faults whose spans overlap
// [from, to], sorted.
func (r *Recorder) faultCausesLocked(from, to time.Time) []string {
	var causes []string
	for _, f := range r.faults {
		if f.From.After(to) || f.Until.Before(from) {
			continue
		}
		causes = append(causes, f.label())
	}
	sort.Strings(causes)
	return causes
}

// mergeCauses unions two sorted cause lists.
func mergeCauses(a, b []string) []string {
	if len(b) == 0 {
		return a
	}
	seen := make(map[string]bool, len(a)+len(b))
	out := make([]string, 0, len(a)+len(b))
	for _, lists := range [][]string{a, b} {
		for _, c := range lists {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	sort.Strings(out)
	return out
}

// AttributeAudit joins audit violations against the alert log: every
// violation stamped inside an alert's episode window becomes an
// "audit:<law> xN" cause. Call after the run (audit violations are
// appended from lane callbacks mid-run; their cross-lane order only
// settles once the clock stops).
func (r *Recorder) AttributeAudit(violations []audit.Violation) {
	if len(violations) == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.alerts {
		a := &r.alerts[i]
		byLaw := make(map[string]int)
		for _, v := range violations {
			if v.At.After(a.WindowStart) && !v.At.After(a.WindowEnd) {
				byLaw[string(v.Law)]++
			}
		}
		if len(byLaw) == 0 {
			continue
		}
		laws := make([]string, 0, len(byLaw))
		for law := range byLaw {
			laws = append(laws, law)
		}
		sort.Strings(laws)
		causes := make([]string, 0, len(laws))
		for _, law := range laws {
			causes = append(causes, fmt.Sprintf("audit:%s x%d", law, byLaw[law]))
		}
		a.Causes = mergeCauses(a.Causes, causes)
	}
}

// Report snapshots the recorder's state: retained windows oldest first,
// the alert log and the per-SLO table. Safe to call mid-run (from a
// barrier) or after the clock stops.
func (r *Recorder) Report() Report {
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := Report{
		Interval:       r.cfg.Interval,
		Start:          r.start,
		End:            r.prevAt,
		WindowsTotal:   r.total,
		WindowsDropped: r.dropped,
		Windows:        make([]Window, 0, len(r.windows)),
		AlertsDropped:  r.alertsDropped,
	}
	for i := 0; i < len(r.windows); i++ {
		rep.Windows = append(rep.Windows, r.windows[(r.winStart+i)%len(r.windows)])
	}
	if len(r.alerts) > 0 {
		rep.Alerts = append([]Alert(nil), r.alerts...)
	}
	for _, st := range r.states {
		rep.SLOs = append(rep.SLOs, SLOSummary{
			SLO:       st.slo,
			Evaluated: st.evaluated,
			Violating: st.violating,
			Alerts:    st.alerts,
			WorstWindow: func() int {
				if st.worstSet {
					return st.worstWin
				}
				return -1
			}(),
			WorstAt:    st.worstAt,
			WorstValue: st.worstVal,
		})
	}
	return rep
}
