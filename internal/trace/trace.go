// Package trace renders experiment output: ASCII time-series plots of
// power traces (for the Fig. 4 / Fig. 5 reproductions) and aligned text
// tables (for the Table 1 / Table 2 reproductions).
package trace

import (
	"fmt"
	"strings"
	"time"

	"contory/internal/energy"
)

// Plot renders a power trace as an ASCII chart: time on the X axis,
// milliwatts on the Y axis. Samples are bucketed to the requested width;
// each bucket plots its maximum (power peaks are the interesting feature).
func Plot(samples []energy.Sample, width, height int, title string) string {
	if width < 10 {
		width = 10
	}
	if height < 4 {
		height = 4
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	if len(samples) == 0 {
		b.WriteString("(no samples)\n")
		return b.String()
	}

	// Bucket samples by time. A degenerate trace — a single sample, or all
	// samples at one instant — has no time axis to spread over: every
	// sample lands explicitly in the first bucket and the axis is labelled
	// with the true (zero) span, instead of scaling by a fabricated one.
	span := samples[len(samples)-1].Since - samples[0].Since
	buckets := make([]float64, width)
	for _, s := range samples {
		idx := 0
		if span > 0 {
			idx = int(float64(s.Since-samples[0].Since) / float64(span) * float64(width-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= width {
			idx = width - 1
		}
		if p := float64(s.Power); p > buckets[idx] {
			buckets[idx] = p
		}
	}
	var maxP float64
	for _, p := range buckets {
		if p > maxP {
			maxP = p
		}
	}
	if maxP == 0 {
		maxP = 1
	}

	// Rows from the top down.
	for row := height; row >= 1; row-- {
		threshold := maxP * float64(row) / float64(height)
		label := fmt.Sprintf("%7.0f mW |", threshold)
		b.WriteString(label)
		for _, p := range buckets {
			if p >= threshold {
				b.WriteByte('#')
			} else if p >= threshold-maxP/float64(2*height) {
				b.WriteByte('.')
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat(" ", 11))
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", width))
	b.WriteByte('\n')
	b.WriteString(fmt.Sprintf("%12s0%*s\n", "", width-1,
		formatDur(span)))
	return b.String()
}

func formatDur(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return fmt.Sprintf("%.0f min", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.0f s", d.Seconds())
	default:
		return fmt.Sprintf("%d ms", d.Milliseconds())
	}
}

// Table renders rows as an aligned text table with a header.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	if total > 2 {
		b.WriteString(strings.Repeat("-", total-2))
		b.WriteByte('\n')
	}
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
