package trace

import "strings"

// TreeNode is one node of a renderable tree — the shape span trees (and
// any other hierarchy) are handed to the text renderer in.
type TreeNode struct {
	Label    string
	Children []TreeNode
}

// RenderTree renders the tree with box-drawing connectors:
//
//	root
//	├─ child a
//	│  └─ grandchild
//	└─ child b
func RenderTree(root TreeNode) string {
	var b strings.Builder
	b.WriteString(root.Label)
	b.WriteByte('\n')
	renderChildren(&b, root.Children, "")
	return b.String()
}

func renderChildren(b *strings.Builder, kids []TreeNode, prefix string) {
	for i, k := range kids {
		connector, childPrefix := "├─ ", prefix+"│  "
		if i == len(kids)-1 {
			connector, childPrefix = "└─ ", prefix+"   "
		}
		b.WriteString(prefix)
		b.WriteString(connector)
		b.WriteString(k.Label)
		b.WriteByte('\n')
		renderChildren(b, k.Children, childPrefix)
	}
}
