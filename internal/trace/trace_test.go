package trace

import (
	"strings"
	"testing"
	"time"

	"contory/internal/energy"
)

func samplesFor(powers []float64) []energy.Sample {
	out := make([]energy.Sample, len(powers))
	for i, p := range powers {
		out[i] = energy.Sample{
			Since: time.Duration(i) * 500 * time.Millisecond,
			Power: energy.Milliwatts(p),
		}
	}
	return out
}

func TestPlotRendersPeaks(t *testing.T) {
	powers := make([]float64, 100)
	for i := range powers {
		powers[i] = 10
	}
	powers[50] = 1000 // one tall peak in the middle
	s := Plot(samplesFor(powers), 50, 8, "test trace")
	if !strings.Contains(s, "test trace") {
		t.Error("missing title")
	}
	if !strings.Contains(s, "#") {
		t.Error("no marks")
	}
	lines := strings.Split(s, "\n")
	// Top row should contain exactly one mark column (the peak).
	top := lines[1]
	if strings.Count(top, "#") != 1 {
		t.Errorf("top row = %q, want a single peak mark", top)
	}
	if !strings.Contains(s, "1000 mW") {
		t.Errorf("missing y-axis max label:\n%s", s)
	}
}

func TestPlotEmpty(t *testing.T) {
	s := Plot(nil, 40, 8, "empty")
	if !strings.Contains(s, "no samples") {
		t.Errorf("Plot(nil) = %q", s)
	}
}

func TestPlotSingleSample(t *testing.T) {
	s := Plot(samplesFor([]float64{42}), 40, 8, "")
	if !strings.Contains(s, "#") {
		t.Errorf("single sample not plotted:\n%s", s)
	}
	// A single sample has no time span: the axis must say so rather than
	// pretend the trace covered a fabricated second.
	if !strings.Contains(s, "0 ms") {
		t.Errorf("single-sample axis label not zero:\n%s", s)
	}
}

func TestPlotAllSamplesAtOneInstant(t *testing.T) {
	// Degenerate trace: several samples, all at the same offset. Every
	// sample must land in the first bucket (leftmost column) and the time
	// axis must read the true zero span.
	samples := []energy.Sample{
		{Since: 2 * time.Second, Power: 10},
		{Since: 2 * time.Second, Power: 500},
		{Since: 2 * time.Second, Power: 250},
	}
	s := Plot(samples, 30, 6, "")
	if !strings.Contains(s, "0 ms") {
		t.Errorf("zero-span axis label wrong:\n%s", s)
	}
	for _, line := range strings.Split(s, "\n") {
		i := strings.IndexByte(line, '|')
		if i < 0 {
			continue
		}
		row := line[i+1:]
		if j := strings.IndexByte(row, '#'); j > 0 {
			t.Fatalf("mark outside the first bucket (col %d):\n%s", j, s)
		}
	}
	// The bucket keeps the maximum power, so the top row still marks it.
	if !strings.Contains(s, "500 mW") {
		t.Errorf("max power label missing:\n%s", s)
	}
}

func TestPlotMinimumDimensions(t *testing.T) {
	// Degenerate dimensions are clamped, not crashed.
	s := Plot(samplesFor([]float64{1, 2, 3}), 1, 1, "")
	if s == "" {
		t.Fatal("empty output")
	}
}

func TestPlotZeroPower(t *testing.T) {
	s := Plot(samplesFor([]float64{0, 0, 0}), 20, 4, "")
	if strings.Contains(s, "#") {
		t.Errorf("flat-zero trace shows marks:\n%s", s)
	}
}

func TestTableAlignment(t *testing.T) {
	tab := &Table{
		Title:   "T",
		Headers: []string{"col-a", "column-bee"},
	}
	tab.Add("x", "1")
	tab.Add("longer-value", "2")
	s := tab.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), s)
	}
	// The second column must start at the same offset in both data rows.
	i1 := strings.Index(lines[3], "1")
	i2 := strings.Index(lines[4], "2")
	if i1 != i2 {
		t.Errorf("columns misaligned:\n%s", s)
	}
	if !strings.HasPrefix(lines[2], "---") {
		t.Errorf("missing rule: %q", lines[2])
	}
}

func TestTableRaggedRows(t *testing.T) {
	tab := &Table{Headers: []string{"a", "b"}}
	tab.Add("only-one")
	tab.Add("x", "y", "extra")
	s := tab.String()
	if !strings.Contains(s, "only-one") || !strings.Contains(s, "extra") {
		t.Errorf("ragged rows mangled:\n%s", s)
	}
}

func TestFormatDur(t *testing.T) {
	tests := []struct {
		d    time.Duration
		want string
	}{
		{90 * time.Second, "2 min"},
		{5 * time.Second, "5 s"},
		{300 * time.Millisecond, "300 ms"},
	}
	for _, tt := range tests {
		if got := formatDur(tt.d); got != tt.want {
			t.Errorf("formatDur(%v) = %q, want %q", tt.d, got, tt.want)
		}
	}
}
