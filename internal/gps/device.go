package gps

import (
	"fmt"
	"sync"
	"time"

	"contory/internal/cxt"
	"contory/internal/radio"
	"contory/internal/simnet"
)

// Message kinds used between phones and GPS devices on the BT medium.
const (
	// KindSubscribe asks the device to start streaming NMEA bursts.
	KindSubscribe = "gps-subscribe"
	// KindUnsubscribe stops the stream for the sender.
	KindUnsubscribe = "gps-unsubscribe"
	// KindNMEA carries one 340-byte NMEA burst (payload: string).
	KindNMEA = "gps-nmea"
)

// SampleInterval is the receiver's reporting rate (1 Hz).
const SampleInterval = time.Second

// Device is a simulated BT GPS receiver: a simnet node that streams NMEA
// bursts at 1 Hz to every subscribed phone while powered and linked.
// Killing the device (SetFailed) reproduces the Fig. 5 GPS failure.
type Device struct {
	node *simnet.Node
	net  *simnet.Network

	mu     sync.Mutex
	fix    cxt.Fix
	subs   map[simnet.NodeID]bool
	failed bool
	ticker interface{ Stop() bool }
}

// NewDevice registers a GPS device node with the given id on the network.
func NewDevice(nw *simnet.Network, id simnet.NodeID, initial cxt.Fix) (*Device, error) {
	node, err := nw.AddNode(id, simnet.Position{})
	if err != nil {
		return nil, fmt.Errorf("gps: add device node: %w", err)
	}
	d := &Device{
		node: node,
		net:  nw,
		fix:  initial,
		subs: make(map[simnet.NodeID]bool),
	}
	node.Handle(KindSubscribe, func(m simnet.Message) {
		d.mu.Lock()
		defer d.mu.Unlock()
		d.subs[m.From] = true
	})
	node.Handle(KindUnsubscribe, func(m simnet.Message) {
		d.mu.Lock()
		defer d.mu.Unlock()
		delete(d.subs, m.From)
	})
	d.ticker = nw.ClockFor(id).Every(SampleInterval, d.tick)
	return d, nil
}

// Node returns the device's simnet node (for linking to phones).
func (d *Device) Node() *simnet.Node { return d.node }

// ID returns the device's node id.
func (d *Device) ID() simnet.NodeID { return d.node.ID() }

// SetFix updates the device's current position.
func (d *Device) SetFix(f cxt.Fix) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.fix = f
}

// Fix returns the current position.
func (d *Device) Fix() cxt.Fix {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.fix
}

// SetFailed switches the device off (true) or back on (false) — the
// "manually switching off the GPS device" of Fig. 5.
func (d *Device) SetFailed(failed bool) {
	d.mu.Lock()
	d.failed = failed
	d.mu.Unlock()
	d.node.SetDown(failed)
}

// Failed reports whether the device is switched off.
func (d *Device) Failed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.failed
}

// Close stops the device's sampling ticker.
func (d *Device) Close() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.ticker != nil {
		d.ticker.Stop()
		d.ticker = nil
	}
}

// tick streams one NMEA burst to every subscriber still linked over BT.
func (d *Device) tick() {
	d.mu.Lock()
	if d.failed {
		d.mu.Unlock()
		return
	}
	fix := d.fix
	subs := make([]simnet.NodeID, 0, len(d.subs))
	for id := range d.subs {
		subs = append(subs, id)
	}
	d.mu.Unlock()

	burst := Burst(fix, d.net.Clock().Now())
	for _, to := range subs {
		msg := simnet.Message{
			From:    d.node.ID(),
			To:      to,
			Medium:  radio.MediumBT,
			Kind:    KindNMEA,
			Payload: burst,
			Bytes:   BurstBytes,
		}
		// Streaming over an established link: a short serial latency.
		// Unreachable subscribers are dropped silently; the phone's
		// BTReference detects the gap and reports the failure.
		_ = d.net.Send(msg, 50*time.Millisecond)
	}
}
