// Package gps simulates the Bluetooth GPS receiver of the paper's testbed
// (an InsSirf III): NMEA 0183 sentence generation and parsing, and a
// simulated device that streams position bursts at 1 Hz over the BT medium
// with scriptable failures (the field trials saw roughly one BT
// disconnection per hour).
package gps

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"contory/internal/cxt"
)

// ErrBadSentence reports an unparsable or checksum-failing NMEA sentence.
var ErrBadSentence = errors.New("gps: bad NMEA sentence")

// Checksum computes the NMEA checksum (XOR of all bytes between '$' and
// '*').
func Checksum(body string) byte {
	var cs byte
	for i := 0; i < len(body); i++ {
		cs ^= body[i]
	}
	return cs
}

// FormatRMC renders a $GPRMC sentence for the fix at the given time.
func FormatRMC(fix cxt.Fix, at time.Time) string {
	body := fmt.Sprintf("GPRMC,%s,A,%s,%s,%06.2f,%06.2f,%s,,",
		at.Format("150405"),
		formatLat(fix.Lat), formatLon(fix.Lon),
		fix.SpeedKn, fix.Course,
		at.Format("020106"))
	return fmt.Sprintf("$%s*%02X", body, Checksum(body))
}

// FormatGGA renders a $GPGGA sentence for the fix at the given time.
func FormatGGA(fix cxt.Fix, at time.Time) string {
	body := fmt.Sprintf("GPGGA,%s,%s,%s,1,08,0.9,5.0,M,0.0,M,,",
		at.Format("150405"),
		formatLat(fix.Lat), formatLon(fix.Lon))
	return fmt.Sprintf("$%s*%02X", body, Checksum(body))
}

// Burst renders the per-second NMEA burst the receiver ships over BT. The
// paper measures GPS-NMEA data at 340 bytes per sample; the burst is padded
// with $GPGSV filler sentences to that size.
func Burst(fix cxt.Fix, at time.Time) string {
	var b strings.Builder
	b.WriteString(FormatRMC(fix, at))
	b.WriteString("\r\n")
	b.WriteString(FormatGGA(fix, at))
	b.WriteString("\r\n")
	// Pad with satellite-in-view filler to the measured burst size.
	for b.Len() < BurstBytes {
		body := "GPGSV,3,1,12,02,45,120,40,05,30,200,35,12,60,050,42,25,15,310,30"
		s := fmt.Sprintf("$%s*%02X\r\n", body, Checksum(body))
		remaining := BurstBytes - b.Len()
		if remaining < len(s) {
			b.WriteString(s[:remaining])
			break
		}
		b.WriteString(s)
	}
	return b.String()
}

// BurstBytes is the size of one GPS-NMEA sample (340 B in §6.1).
const BurstBytes = 340

// ParseRMC parses a $GPRMC sentence back into a fix, verifying the
// checksum.
func ParseRMC(sentence string) (cxt.Fix, error) {
	body, err := checkFrame(sentence)
	if err != nil {
		return cxt.Fix{}, err
	}
	fields := strings.Split(body, ",")
	if len(fields) < 10 || fields[0] != "GPRMC" {
		return cxt.Fix{}, fmt.Errorf("%w: not a GPRMC sentence", ErrBadSentence)
	}
	if fields[2] != "A" {
		return cxt.Fix{}, fmt.Errorf("%w: fix not valid (status %q)", ErrBadSentence, fields[2])
	}
	lat, err := parseCoord(fields[3], fields[4], 2)
	if err != nil {
		return cxt.Fix{}, err
	}
	lon, err := parseCoord(fields[5], fields[6], 3)
	if err != nil {
		return cxt.Fix{}, err
	}
	speed, err := strconv.ParseFloat(fields[7], 64)
	if err != nil {
		return cxt.Fix{}, fmt.Errorf("%w: speed: %v", ErrBadSentence, err)
	}
	course, err := strconv.ParseFloat(fields[8], 64)
	if err != nil {
		return cxt.Fix{}, fmt.Errorf("%w: course: %v", ErrBadSentence, err)
	}
	return cxt.Fix{Lat: lat, Lon: lon, SpeedKn: speed, Course: course}, nil
}

// ParseBurst extracts the fix from a burst (its RMC sentence).
func ParseBurst(burst string) (cxt.Fix, error) {
	for _, line := range strings.Split(burst, "\r\n") {
		if strings.HasPrefix(line, "$GPRMC") {
			return ParseRMC(line)
		}
	}
	return cxt.Fix{}, fmt.Errorf("%w: burst has no GPRMC sentence", ErrBadSentence)
}

// checkFrame strips $...*CS framing and validates the checksum.
func checkFrame(sentence string) (string, error) {
	if len(sentence) < 4 || sentence[0] != '$' {
		return "", fmt.Errorf("%w: missing frame", ErrBadSentence)
	}
	star := strings.LastIndexByte(sentence, '*')
	if star < 0 || star+3 > len(sentence) {
		return "", fmt.Errorf("%w: missing checksum", ErrBadSentence)
	}
	body := sentence[1:star]
	want, err := strconv.ParseUint(sentence[star+1:star+3], 16, 8)
	if err != nil {
		return "", fmt.Errorf("%w: checksum: %v", ErrBadSentence, err)
	}
	if Checksum(body) != byte(want) {
		return "", fmt.Errorf("%w: checksum mismatch", ErrBadSentence)
	}
	return body, nil
}

// formatLat renders ddmm.mmmm,N/S.
func formatLat(deg float64) string {
	hemi := "N"
	if deg < 0 {
		hemi = "S"
		deg = -deg
	}
	d := math.Floor(deg)
	m := (deg - d) * 60
	return fmt.Sprintf("%02.0f%07.4f,%s", d, m, hemi)
}

// formatLon renders dddmm.mmmm,E/W.
func formatLon(deg float64) string {
	hemi := "E"
	if deg < 0 {
		hemi = "W"
		deg = -deg
	}
	d := math.Floor(deg)
	m := (deg - d) * 60
	return fmt.Sprintf("%03.0f%07.4f,%s", d, m, hemi)
}

// parseCoord converts ddmm.mmmm (+ hemisphere) back to decimal degrees;
// degDigits is 2 for latitude, 3 for longitude.
func parseCoord(val, hemi string, degDigits int) (float64, error) {
	if len(val) <= degDigits {
		return 0, fmt.Errorf("%w: coordinate %q", ErrBadSentence, val)
	}
	d, err := strconv.ParseFloat(val[:degDigits], 64)
	if err != nil {
		return 0, fmt.Errorf("%w: coordinate degrees: %v", ErrBadSentence, err)
	}
	m, err := strconv.ParseFloat(val[degDigits:], 64)
	if err != nil {
		return 0, fmt.Errorf("%w: coordinate minutes: %v", ErrBadSentence, err)
	}
	deg := d + m/60
	switch hemi {
	case "N", "E":
		return deg, nil
	case "S", "W":
		return -deg, nil
	default:
		return 0, fmt.Errorf("%w: hemisphere %q", ErrBadSentence, hemi)
	}
}
