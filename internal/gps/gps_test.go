package gps

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"contory/internal/cxt"
	"contory/internal/radio"
	"contory/internal/simnet"
	"contory/internal/vclock"
)

var testTime = time.Date(2005, time.June, 10, 12, 0, 0, 0, time.UTC)

func TestChecksum(t *testing.T) {
	// Known NMEA example: "GPGGA,..." checksums are XORs; verify the
	// involution property ($X*CS reparses).
	body := "GPRMC,120000,A,6009.6000,N,02456.0000,E,005.20,270.00,100605,,"
	s := "$" + body + "*" + strings.ToUpper(hex2(Checksum(body)))
	if _, err := checkFrame(s); err != nil {
		t.Fatalf("checkFrame: %v", err)
	}
}

func hex2(b byte) string {
	const digits = "0123456789abcdef"
	return string([]byte{digits[b>>4], digits[b&0xf]})
}

func TestFormatParseRMCRoundTrip(t *testing.T) {
	fix := cxt.Fix{Lat: 60.16, Lon: 24.9333, SpeedKn: 5.2, Course: 270}
	s := FormatRMC(fix, testTime)
	got, err := ParseRMC(s)
	if err != nil {
		t.Fatalf("ParseRMC(%q): %v", s, err)
	}
	if math.Abs(got.Lat-fix.Lat) > 1e-4 || math.Abs(got.Lon-fix.Lon) > 1e-4 {
		t.Fatalf("coords = (%v,%v), want (%v,%v)", got.Lat, got.Lon, fix.Lat, fix.Lon)
	}
	if math.Abs(got.SpeedKn-fix.SpeedKn) > 0.01 || math.Abs(got.Course-fix.Course) > 0.01 {
		t.Fatalf("speed/course = %v/%v", got.SpeedKn, got.Course)
	}
}

func TestSouthWestHemispheres(t *testing.T) {
	fix := cxt.Fix{Lat: -33.85, Lon: -151.2, SpeedKn: 0, Course: 0}
	got, err := ParseRMC(FormatRMC(fix, testTime))
	if err != nil {
		t.Fatal(err)
	}
	if got.Lat >= 0 || got.Lon >= 0 {
		t.Fatalf("hemispheres lost: %+v", got)
	}
	if math.Abs(got.Lat-fix.Lat) > 1e-4 || math.Abs(got.Lon-fix.Lon) > 1e-4 {
		t.Fatalf("coords = %+v", got)
	}
}

func TestParseRMCErrors(t *testing.T) {
	bad := []string{
		"",
		"GPRMC,no,dollar",
		"$GPRMC,120000,A,6009.6,N,02456.0,E,5,270,100605,,*00", // wrong checksum
		"$GPGGA,120000*00",
		"$GPRMC,120000,V,6009.6000,N,02456.0000,E,005.20,270.00,100605,,*00",
	}
	for _, s := range bad {
		if _, err := ParseRMC(s); !errors.Is(err, ErrBadSentence) {
			t.Errorf("ParseRMC(%q) = %v, want ErrBadSentence", s, err)
		}
	}
}

func TestBurstSizeAndParse(t *testing.T) {
	fix := cxt.Fix{Lat: 60.16, Lon: 24.9333, SpeedKn: 3.1, Course: 90}
	b := Burst(fix, testTime)
	if len(b) != BurstBytes {
		t.Fatalf("burst size = %d, want %d (paper: 340 B)", len(b), BurstBytes)
	}
	got, err := ParseBurst(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Lat-fix.Lat) > 1e-4 {
		t.Fatalf("burst fix = %+v", got)
	}
	if _, err := ParseBurst("no sentences here"); !errors.Is(err, ErrBadSentence) {
		t.Fatalf("ParseBurst(garbage) = %v", err)
	}
}

// Property: format→parse round-trips any reasonable fix.
func TestRMCRoundTripProperty(t *testing.T) {
	prop := func(lat100, lon100 int32, speed10, course10 uint16) bool {
		fix := cxt.Fix{
			Lat:     float64(lat100%9000) / 100,
			Lon:     float64(lon100%18000) / 100,
			SpeedKn: float64(speed10%999) / 10,
			Course:  float64(course10 % 360),
		}
		got, err := ParseRMC(FormatRMC(fix, testTime))
		if err != nil {
			return false
		}
		return math.Abs(got.Lat-fix.Lat) < 1e-3 &&
			math.Abs(got.Lon-fix.Lon) < 1e-3 &&
			math.Abs(got.SpeedKn-fix.SpeedKn) < 0.01 &&
			math.Abs(got.Course-fix.Course) < 0.01
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func newTestbed(t *testing.T) (*simnet.Network, *vclock.Simulator, *Device, *simnet.Node) {
	t.Helper()
	clk := vclock.NewSimulator()
	nw := simnet.New(clk)
	phone, err := nw.AddNode("phone", simnet.Position{})
	if err != nil {
		t.Fatal(err)
	}
	dev, err := NewDevice(nw, "bt-gps-1", cxt.Fix{Lat: 60.16, Lon: 24.93, SpeedKn: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Connect("phone", dev.ID(), radio.MediumBT); err != nil {
		t.Fatal(err)
	}
	return nw, clk, dev, phone
}

func TestDeviceStreamsAtOneHz(t *testing.T) {
	nw, clk, dev, phone := newTestbed(t)
	defer dev.Close()
	var bursts []string
	phone.Handle(KindNMEA, func(m simnet.Message) {
		s, ok := m.Payload.(string)
		if !ok {
			t.Errorf("payload type %T", m.Payload)
			return
		}
		bursts = append(bursts, s)
	})
	err := nw.Send(simnet.Message{
		From: "phone", To: dev.ID(), Medium: radio.MediumBT, Kind: KindSubscribe,
	}, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(10*time.Second + 100*time.Millisecond)
	if len(bursts) != 10 {
		t.Fatalf("received %d bursts in 10 s, want 10", len(bursts))
	}
	fix, err := ParseBurst(bursts[0])
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fix.Lat-60.16) > 1e-3 {
		t.Fatalf("fix = %+v", fix)
	}
}

func TestDeviceFailureStopsStream(t *testing.T) {
	nw, clk, dev, phone := newTestbed(t)
	defer dev.Close()
	count := 0
	phone.Handle(KindNMEA, func(simnet.Message) { count++ })
	err := nw.Send(simnet.Message{
		From: "phone", To: dev.ID(), Medium: radio.MediumBT, Kind: KindSubscribe,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(5 * time.Second)
	before := count
	if before == 0 {
		t.Fatal("no samples before failure")
	}
	dev.SetFailed(true) // Fig. 5: GPS manually switched off
	if !dev.Failed() {
		t.Fatal("Failed() = false")
	}
	clk.Advance(10 * time.Second)
	if count != before {
		t.Fatalf("samples kept flowing after failure: %d → %d", before, count)
	}
	dev.SetFailed(false) // GPS becomes available again
	clk.Advance(3 * time.Second)
	if count <= before {
		t.Fatal("stream did not resume after recovery")
	}
}

func TestDeviceUnsubscribe(t *testing.T) {
	nw, clk, dev, phone := newTestbed(t)
	defer dev.Close()
	count := 0
	phone.Handle(KindNMEA, func(simnet.Message) { count++ })
	if err := nw.Send(simnet.Message{
		From: "phone", To: dev.ID(), Medium: radio.MediumBT, Kind: KindSubscribe,
	}, 0); err != nil {
		t.Fatal(err)
	}
	clk.Advance(3 * time.Second)
	if err := nw.Send(simnet.Message{
		From: "phone", To: dev.ID(), Medium: radio.MediumBT, Kind: KindUnsubscribe,
	}, 0); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second) // drain in-flight
	before := count
	clk.Advance(5 * time.Second)
	if count != before {
		t.Fatalf("samples after unsubscribe: %d → %d", before, count)
	}
}

func TestDeviceSetFix(t *testing.T) {
	_, clk, dev, phone := newTestbed(t)
	defer dev.Close()
	var last string
	phone.Handle(KindNMEA, func(m simnet.Message) {
		if s, ok := m.Payload.(string); ok {
			last = s
		}
	})
	nw := dev.net
	if err := nw.Send(simnet.Message{
		From: "phone", To: dev.ID(), Medium: radio.MediumBT, Kind: KindSubscribe,
	}, 0); err != nil {
		t.Fatal(err)
	}
	dev.SetFix(cxt.Fix{Lat: 61.5, Lon: 23.75, SpeedKn: 7})
	clk.Advance(2 * time.Second)
	fix, err := ParseBurst(last)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fix.Lat-61.5) > 1e-3 || math.Abs(fix.SpeedKn-7) > 0.01 {
		t.Fatalf("fix = %+v", fix)
	}
	if got := dev.Fix(); got.Lat != 61.5 {
		t.Fatalf("Fix() = %+v", got)
	}
}
