package infer

import (
	"testing"
	"testing/quick"
	"time"

	"contory/internal/cxt"
)

var t0 = time.Date(2005, time.June, 10, 12, 0, 0, 0, time.UTC)

func TestClassifyPedestrian(t *testing.T) {
	tests := []struct {
		speed float64
		want  string
	}{
		{0, ActivityStill},
		{0.4, ActivityStill},
		{3, ActivityWalking},
		{10, ActivityRunning},
		{50, ActivityDriving},
		{-5, ActivityStill}, // clamped
	}
	for _, tt := range tests {
		if got := Classify(Pedestrian, tt.speed); got != tt.want {
			t.Errorf("Classify(ped, %v) = %q, want %q", tt.speed, got, tt.want)
		}
	}
}

func TestClassifySailing(t *testing.T) {
	tests := []struct {
		speed float64
		want  string
	}{
		{0.1, ActivityAnchored},
		{1, ActivityDrifting},
		{5, ActivitySailing},
		{12, ActivityMotoring},
	}
	for _, tt := range tests {
		if got := Classify(Sailing, tt.speed); got != tt.want {
			t.Errorf("Classify(sail, %v) = %q, want %q", tt.speed, got, tt.want)
		}
	}
}

func TestActivityClassifierSmoothing(t *testing.T) {
	c := NewActivityClassifier(Sailing, 5)
	if _, ok := c.Activity(); ok {
		t.Fatal("activity before any observation")
	}
	// Steady sailing with one GPS glitch to 12 kn: the window absorbs it.
	for _, v := range []float64{5, 5.2, 12, 5.1, 4.9} {
		c.Observe(v)
	}
	got, ok := c.Activity()
	if !ok || got != ActivitySailing {
		t.Fatalf("Activity = %q, %v; want sailing despite the glitch", got, ok)
	}
	// Sustained change wins through.
	for _, v := range []float64{12, 13, 12.5, 12.8, 13.1} {
		c.Observe(v)
	}
	if got, _ := c.Activity(); got != ActivityMotoring {
		t.Fatalf("Activity = %q, want motoring", got)
	}
}

func TestActivityClassifierWindowBound(t *testing.T) {
	c := NewActivityClassifier(Pedestrian, 0) // clamped to 1
	c.Observe(3)
	c.Observe(100)
	got, _ := c.Activity()
	if got != ActivityDriving {
		t.Fatalf("Activity = %q, want latest-only window", got)
	}
}

func TestProfileString(t *testing.T) {
	if Pedestrian.String() != "pedestrian" || Sailing.String() != "sailing" {
		t.Fatal("Profile strings broken")
	}
}

// walkingOutside is the paper's §4.1 example situation.
func walkingOutside() Situation {
	return Situation{
		Name: "walking outside",
		Conditions: []Condition{
			{Type: cxt.TypeNoise, Symbol: "medium"},
			{Type: cxt.TypeLight, Symbol: "natural"},
			{Type: cxt.TypeActivity, Symbol: ActivityWalking},
		},
	}
}

func item(typ cxt.Type, v any, age time.Duration) cxt.Item {
	return cxt.Item{Type: typ, Value: v, Timestamp: t0.Add(age)}
}

func TestSituationPaperExample(t *testing.T) {
	sc, err := NewSituationClassifier(walkingOutside())
	if err != nil {
		t.Fatal(err)
	}
	items := []cxt.Item{
		item(cxt.TypeNoise, "medium", 0),
		item(cxt.TypeLight, "natural", 0),
		item(cxt.TypeActivity, ActivityWalking, 0),
	}
	best, ok := sc.Best(items)
	if !ok || best.Situation != "walking outside" || best.Confidence != 1 {
		t.Fatalf("Best = %+v, %v", best, ok)
	}
	// One mandatory condition off: no match.
	items[2] = item(cxt.TypeActivity, ActivityDriving, 0)
	if _, ok := sc.Best(items); ok {
		t.Fatal("matched with wrong activity")
	}
}

func TestSituationNumericRangesAndOptional(t *testing.T) {
	sc, err := NewSituationClassifier(Situation{
		Name: "good sailing weather",
		Conditions: []Condition{
			{Type: cxt.TypeWind, Min: 6, Max: 18},
			{Type: cxt.TypeTemperature, Min: 10, Max: 30},
			{Type: cxt.TypePressure, Min: 1000, Max: 1040, Optional: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Mandatory conditions hold; the optional one is missing: matches with
	// reduced confidence.
	items := []cxt.Item{
		item(cxt.TypeWind, 10.0, 0),
		item(cxt.TypeTemperature, 18.0, 0),
	}
	best, ok := sc.Best(items)
	if !ok || best.Confidence <= 0.6 || best.Confidence >= 1 {
		t.Fatalf("Best = %+v, %v", best, ok)
	}
	// With the optional condition satisfied: full confidence.
	items = append(items, item(cxt.TypePressure, 1015.0, 0))
	best, _ = sc.Best(items)
	if best.Confidence != 1 {
		t.Fatalf("confidence = %v", best.Confidence)
	}
	// Out-of-range mandatory value vetoes.
	items[0] = item(cxt.TypeWind, 30.0, 0)
	if _, ok := sc.Best(items); ok {
		t.Fatal("matched in a gale")
	}
	// Non-numeric value for a numeric condition vetoes.
	items[0] = item(cxt.TypeWind, "breezy", 0)
	if _, ok := sc.Best(items); ok {
		t.Fatal("matched a symbolic wind against a numeric range")
	}
}

func TestSituationNewestItemPerTypeWins(t *testing.T) {
	sc, err := NewSituationClassifier(walkingOutside())
	if err != nil {
		t.Fatal(err)
	}
	items := []cxt.Item{
		item(cxt.TypeNoise, "medium", 0),
		item(cxt.TypeLight, "natural", 0),
		item(cxt.TypeActivity, ActivityDriving, 0),           // stale
		item(cxt.TypeActivity, ActivityWalking, time.Minute), // fresh
	}
	if _, ok := sc.Best(items); !ok {
		t.Fatal("fresh activity item did not supersede the stale one")
	}
}

func TestSituationRanking(t *testing.T) {
	sc, err := NewSituationClassifier(
		Situation{Name: "b-partial", Conditions: []Condition{
			{Type: cxt.TypeNoise, Symbol: "medium"},
			{Type: cxt.TypeLight, Symbol: "artificial", Optional: true},
		}},
		Situation{Name: "a-full", Conditions: []Condition{
			{Type: cxt.TypeNoise, Symbol: "medium"},
			{Type: cxt.TypeLight, Symbol: "natural", Optional: true},
		}},
	)
	if err != nil {
		t.Fatal(err)
	}
	items := []cxt.Item{
		item(cxt.TypeNoise, "medium", 0),
		item(cxt.TypeLight, "natural", 0),
	}
	ms := sc.Infer(items)
	if len(ms) != 2 || ms[0].Situation != "a-full" || ms[1].Situation != "b-partial" {
		t.Fatalf("Infer = %+v", ms)
	}
	if ms[0].Confidence <= ms[1].Confidence {
		t.Fatalf("confidence ordering broken: %+v", ms)
	}
}

func TestSituationValidation(t *testing.T) {
	if _, err := NewSituationClassifier(Situation{}); err == nil {
		t.Error("unnamed situation accepted")
	}
	if _, err := NewSituationClassifier(Situation{Name: "x"}); err == nil {
		t.Error("condition-less situation accepted")
	}
	if _, err := NewSituationClassifier(walkingOutside(), walkingOutside()); err == nil {
		t.Error("duplicate situation accepted")
	}
	sc, err := NewSituationClassifier(walkingOutside())
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Add(walkingOutside()); err == nil {
		t.Error("Add duplicate accepted")
	}
	if err := sc.Add(Situation{Name: "other", Conditions: []Condition{{Type: cxt.TypeWind, Min: 0, Max: 1}}}); err != nil {
		t.Fatal(err)
	}
}

// Property: classification is monotone in speed — higher speed never maps
// to a "slower" activity class.
func TestClassifyMonotoneProperty(t *testing.T) {
	rank := map[string]int{
		ActivityStill: 0, ActivityWalking: 1, ActivityRunning: 2, ActivityDriving: 3,
		ActivityAnchored: 0, ActivityDrifting: 1, ActivitySailing: 2, ActivityMotoring: 3,
	}
	prop := func(a, b uint16, sail bool) bool {
		p := Pedestrian
		if sail {
			p = Sailing
		}
		s1, s2 := float64(a%300)/10, float64(b%300)/10
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		return rank[Classify(p, s1)] <= rank[Classify(p, s2)]
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
