// Package infer provides the reasoning mechanisms §4.3 allows CxtProviders
// to incorporate: deriving higher-level context data from raw items.
//
// Two reasoners are provided:
//
//   - ActivityClassifier: derives the user's activity from a window of
//     speed observations (GPS), for both pedestrian and sailing profiles.
//   - SituationClassifier: matches a set of context items against
//     rule-based situation definitions — the paper's example being
//     <noise=medium, light=natural, activity=walking> ⇒ "walking outside".
//
// Both are deterministic and allocation-light so they can run inside a
// provider on every sample.
package infer

import (
	"fmt"
	"sort"
	"sync"

	"contory/internal/cxt"
)

// Activity labels produced by the ActivityClassifier.
const (
	ActivityStill    = "still"
	ActivityWalking  = "walking"
	ActivityRunning  = "running"
	ActivityDriving  = "driving"
	ActivityAnchored = "anchored"
	ActivityDrifting = "drifting"
	ActivitySailing  = "sailing"
	ActivityMotoring = "motoring"
)

// Profile selects the speed-to-activity mapping.
type Profile int

// Profiles.
const (
	// Pedestrian maps speeds (in km/h) to still/walking/running/driving.
	Pedestrian Profile = iota + 1
	// Sailing maps speeds (in knots) to anchored/drifting/sailing/motoring
	// (the DYNAMOS domain).
	Sailing
)

// String implements fmt.Stringer.
func (p Profile) String() string {
	if p == Sailing {
		return "sailing"
	}
	return "pedestrian"
}

// ActivityClassifier smooths speed observations over a sliding window and
// classifies the current activity. The window suppresses GPS speed jitter
// (single-sample classification flip-flops).
type ActivityClassifier struct {
	profile Profile

	mu     sync.Mutex
	window []float64
	size   int
}

// NewActivityClassifier returns a classifier smoothing over windowSize
// observations (minimum 1).
func NewActivityClassifier(profile Profile, windowSize int) *ActivityClassifier {
	if windowSize < 1 {
		windowSize = 1
	}
	return &ActivityClassifier{profile: profile, size: windowSize}
}

// Observe adds a speed sample (km/h for Pedestrian, knots for Sailing).
func (c *ActivityClassifier) Observe(speed float64) {
	if speed < 0 {
		speed = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.window = append(c.window, speed)
	if len(c.window) > c.size {
		c.window = c.window[len(c.window)-c.size:]
	}
}

// Activity classifies the smoothed speed; ok is false before any
// observation.
func (c *ActivityClassifier) Activity() (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.window) == 0 {
		return "", false
	}
	var sum float64
	for _, v := range c.window {
		sum += v
	}
	mean := sum / float64(len(c.window))
	return classify(c.profile, mean), true
}

// Classify maps a single (already smoothed) speed to an activity label.
func Classify(profile Profile, speed float64) string {
	if speed < 0 {
		speed = 0
	}
	return classify(profile, speed)
}

func classify(profile Profile, speed float64) string {
	if profile == Sailing {
		switch {
		case speed < 0.5:
			return ActivityAnchored
		case speed < 2:
			return ActivityDrifting
		case speed < 8:
			return ActivitySailing
		default:
			return ActivityMotoring
		}
	}
	switch {
	case speed < 0.5:
		return ActivityStill
	case speed < 7:
		return ActivityWalking
	case speed < 14:
		return ActivityRunning
	default:
		return ActivityDriving
	}
}

// Condition constrains one context type's value within a situation
// definition. Exactly one of Symbol or the numeric range is used: Symbol
// matches string values; otherwise the numeric value must fall in
// [Min, Max] (use ±Inf-like wide bounds for one-sided constraints).
type Condition struct {
	Type   cxt.Type
	Symbol string
	Min    float64
	Max    float64
	// Optional marks conditions that raise confidence when satisfied but
	// do not veto the situation when the item is missing.
	Optional bool
}

// matches evaluates the condition against an item's value.
func (c Condition) matches(it cxt.Item) bool {
	if c.Symbol != "" {
		s, ok := it.Value.(string)
		return ok && s == c.Symbol
	}
	v, ok := it.NumericValue()
	if !ok {
		return false
	}
	return v >= c.Min && v <= c.Max
}

// Situation is a rule-based definition of a higher-level context: a label
// plus the item conditions that characterize it.
type Situation struct {
	Name       string
	Conditions []Condition
}

// Match is the result of classifying a set of items against a situation.
type Match struct {
	Situation string
	// Confidence is the fraction of conditions satisfied (mandatory
	// conditions must all hold; optional ones raise the score).
	Confidence float64
}

// SituationClassifier matches item sets against situation definitions.
type SituationClassifier struct {
	mu         sync.Mutex
	situations []Situation
}

// NewSituationClassifier returns a classifier with the given definitions.
func NewSituationClassifier(defs ...Situation) (*SituationClassifier, error) {
	seen := map[string]bool{}
	for _, d := range defs {
		if d.Name == "" {
			return nil, fmt.Errorf("infer: situation needs a name")
		}
		if seen[d.Name] {
			return nil, fmt.Errorf("infer: duplicate situation %q", d.Name)
		}
		if len(d.Conditions) == 0 {
			return nil, fmt.Errorf("infer: situation %q needs conditions", d.Name)
		}
		seen[d.Name] = true
	}
	sc := &SituationClassifier{situations: make([]Situation, len(defs))}
	copy(sc.situations, defs)
	return sc, nil
}

// Add installs another situation definition.
func (sc *SituationClassifier) Add(s Situation) error {
	if s.Name == "" || len(s.Conditions) == 0 {
		return fmt.Errorf("infer: invalid situation definition")
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	for _, existing := range sc.situations {
		if existing.Name == s.Name {
			return fmt.Errorf("infer: duplicate situation %q", s.Name)
		}
	}
	sc.situations = append(sc.situations, s)
	return nil
}

// Infer evaluates the items against every situation and returns matches
// sorted by confidence (ties broken by name). Situations whose mandatory
// conditions are not all satisfied are omitted.
func (sc *SituationClassifier) Infer(items []cxt.Item) []Match {
	byType := make(map[cxt.Type]cxt.Item, len(items))
	for _, it := range items {
		// Newest item per type wins.
		if prev, ok := byType[it.Type]; !ok || it.Timestamp.After(prev.Timestamp) {
			byType[it.Type] = it
		}
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	var out []Match
	for _, s := range sc.situations {
		satisfied, total := 0, len(s.Conditions)
		ok := true
		for _, c := range s.Conditions {
			it, present := byType[c.Type]
			holds := present && c.matches(it)
			if holds {
				satisfied++
				continue
			}
			if !c.Optional {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		out = append(out, Match{
			Situation:  s.Name,
			Confidence: float64(satisfied) / float64(total),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		return out[i].Situation < out[j].Situation
	})
	return out
}

// Best returns the highest-confidence match, if any.
func (sc *SituationClassifier) Best(items []cxt.Item) (Match, bool) {
	ms := sc.Infer(items)
	if len(ms) == 0 {
		return Match{}, false
	}
	return ms[0], true
}
