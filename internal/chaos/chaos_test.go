package chaos

import (
	"reflect"
	"testing"
	"time"

	"contory/internal/metrics"
	"contory/internal/radio"
	"contory/internal/simnet"
	"contory/internal/vclock"
)

type fakeGPS struct{ failed bool }

func (g *fakeGPS) SetFailed(b bool) { g.failed = b }

func targetsN(n int) []Target {
	out := make([]Target, n)
	for i := range out {
		out[i] = Target{ID: string(rune('a' + i))}
	}
	return out
}

func TestPlanDeterministic(t *testing.T) {
	p := Profiles["mixed"]
	ts := targetsN(8)
	a := Plan(p, 42, ts, 10*time.Minute)
	b := Plan(p, 42, ts, 10*time.Minute)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same-seed plans differ")
	}
	if len(a) == 0 {
		t.Fatal("mixed profile over 10 minutes planned no faults")
	}
	c := Plan(p, 43, ts, 10*time.Minute)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical plans")
	}
	for i := 1; i < len(a); i++ {
		if a[i].At < a[i-1].At {
			t.Fatalf("plan not sorted by At: %v after %v", a[i].At, a[i-1].At)
		}
	}
	for i, f := range a {
		if f.ID == "" || f.Duration <= 0 {
			t.Fatalf("fault %d missing ID or duration: %+v", i, f)
		}
	}
}

func TestPlanCapabilityGating(t *testing.T) {
	// No target has GPS or battery handles: those kinds must be skipped.
	p := Profile{GPSOutagePerMin: 5, BatteryPerMin: 5}
	if faults := Plan(p, 1, targetsN(4), 5*time.Minute); len(faults) != 0 {
		t.Fatalf("planned %d gps/battery faults against incapable targets", len(faults))
	}

	// With one capable target, every such fault lands on it.
	g := &fakeGPS{}
	ts := targetsN(4)
	ts[2].GPS = g
	ts[3].SetBattery = func(float64) {}
	faults := Plan(p, 1, ts, 5*time.Minute)
	if len(faults) == 0 {
		t.Fatal("no faults planned despite capable targets")
	}
	for _, f := range faults {
		switch f.Kind {
		case KindGPSOutage:
			if f.Target != ts[2].ID {
				t.Fatalf("gps fault aimed at %q, want %q", f.Target, ts[2].ID)
			}
		case KindBatteryDrain:
			if f.Target != ts[3].ID {
				t.Fatalf("battery fault aimed at %q, want %q", f.Target, ts[3].ID)
			}
		default:
			t.Fatalf("unexpected fault kind %q", f.Kind)
		}
	}
}

func TestPlanLinkFlapPrefersGPSLink(t *testing.T) {
	ts := targetsN(3)
	for i := range ts {
		ts[i].GPSNode = ts[i].ID + "-gps"
	}
	faults := Plan(Profile{LinkFlapPerMin: 3}, 7, ts, 5*time.Minute)
	if len(faults) == 0 {
		t.Fatal("no flaps planned")
	}
	for _, f := range faults {
		if f.Medium != radio.MediumBT || f.Peer != f.Target+"-gps" {
			t.Fatalf("flap with GPSNode target should hit the BT GPS link, got %+v", f)
		}
	}
}

func TestInjectorAppliesAndClears(t *testing.T) {
	clk := vclock.NewSimulator()
	nw := simnet.New(clk)
	for _, id := range []simnet.NodeID{"a", "b"} {
		if _, err := nw.AddNode(id, simnet.Position{}); err != nil {
			t.Fatal(err)
		}
	}
	reg := metrics.NewRegistry()
	g := &fakeGPS{}
	batt := 1.0
	targets := []Target{
		{ID: "a", GPS: g, SetBattery: func(v float64) { batt = v }},
		{ID: "b"},
	}
	faults := []Fault{
		{ID: "fault-0000", Kind: KindRadioOutage, At: 10 * time.Second, Duration: 20 * time.Second, Target: "a", Medium: radio.MediumWiFi},
		{ID: "fault-0001", Kind: KindPartition, At: 15 * time.Second, Duration: 20 * time.Second, Target: "a", Medium: radio.MediumWiFi, Nodes: []string{"a"}},
		{ID: "fault-0002", Kind: KindGPSOutage, At: 20 * time.Second, Duration: 10 * time.Second, Target: "a"},
		{ID: "fault-0003", Kind: KindBatteryDrain, At: 25 * time.Second, Duration: 10 * time.Second, Target: "a"},
		{ID: "fault-0004", Kind: KindProviderHang, At: 30 * time.Second, Duration: 10 * time.Second, Target: "b", Medium: radio.MediumWiFi, Severity: 1},
	}
	in := NewInjector(nw, SimClock{C: clk}, reg, targets, faults)
	in.Install()

	if err := nw.Connect("a", "b", radio.MediumWiFi); err != nil {
		t.Fatal(err)
	}

	clk.Advance(12 * time.Second)
	if nw.Node("a").RadioOn(radio.MediumWiFi) {
		t.Fatal("radio still on during outage window")
	}
	clk.Advance(10 * time.Second) // t = 22 s: partition + gps outage active
	if nw.Linked("a", "b", radio.MediumWiFi) {
		t.Fatal("partitioned nodes still linked")
	}
	if !g.failed {
		t.Fatal("gps not failed during outage")
	}
	clk.Advance(5 * time.Second) // t = 27 s: battery drain active
	if batt != 0 {
		t.Fatalf("battery = %v during drain", batt)
	}
	if !nw.Node("a").Down() {
		t.Fatal("node not down during battery drain")
	}
	clk.Advance(5 * time.Second) // t = 32 s: hang active
	if nw.NodeLoss("b", radio.MediumWiFi) != 1 {
		t.Fatal("hang did not set node loss to 1")
	}

	clk.Advance(time.Minute) // everything cleared
	if !nw.Node("a").RadioOn(radio.MediumWiFi) {
		t.Fatal("radio not restored")
	}
	if !nw.Linked("a", "b", radio.MediumWiFi) {
		t.Fatal("partition not healed")
	}
	if g.failed {
		t.Fatal("gps not restored")
	}
	if batt != 1 || nw.Node("a").Down() {
		t.Fatalf("battery drain not cleared: batt=%v down=%v", batt, nw.Node("a").Down())
	}
	if nw.NodeLoss("b", radio.MediumWiFi) != 0 {
		t.Fatal("hang not cleared")
	}

	snap := reg.Snapshot()
	counter := func(name string) int64 {
		for _, c := range snap.Counters {
			if c.Name == name {
				return c.Value
			}
		}
		return 0
	}
	if got := counter("chaos.faults.injected"); got != int64(len(faults)) {
		t.Fatalf("injected counter = %d, want %d", got, len(faults))
	}
	if got := counter("chaos.faults.cleared"); got != int64(len(faults)) {
		t.Fatalf("cleared counter = %d, want %d", got, len(faults))
	}
	var injected, cleared int
	for _, ev := range snap.Events {
		switch ev.Kind {
		case metrics.EventFaultInjected:
			injected++
		case metrics.EventFaultCleared:
			cleared++
		}
	}
	if injected != len(faults) || cleared != len(faults) {
		t.Fatalf("ring has %d injected / %d cleared events, want %d each", injected, cleared, len(faults))
	}
}

func TestAttribute(t *testing.T) {
	start := time.Unix(0, 0).UTC()
	faults := []Fault{
		{ID: "fault-0000", Kind: KindGPSOutage, At: time.Minute, Duration: 30 * time.Second, Target: "phone"},
		{ID: "fault-0001", Kind: KindRadioOutage, At: 5 * time.Minute, Duration: 30 * time.Second, Target: "phone", Medium: radio.MediumUMTS},
	}
	switches := []Switch{
		// Inside the gps fault window, gps reason: attributed to it.
		{At: start.Add(70 * time.Second), Query: "phone/q1", Reason: "failure of bt-gps-1: link lost"},
		// Cascade inside the window + grace: adhoc fallback timing out.
		{At: start.Add(2 * time.Minute), Query: "phone/q1", Reason: "failure of wifi: finder timeout"},
		// UMTS reason during the umts outage.
		{At: start.Add(5*time.Minute + 10*time.Second), Query: "phone/q2", Reason: "failure of umts: request timeout"},
		// No fault anywhere near: unattributed.
		{At: start.Add(20 * time.Minute), Query: "phone/q3", Reason: "failure of wifi: finder timeout"},
	}
	att := Attribute(start, faults, switches, DefaultGrace)
	if att.Switches != 4 || att.Attributed != 3 {
		t.Fatalf("attributed %d of %d, want 3 of 4", att.Attributed, att.Switches)
	}
	if len(att.Unattributed) != 1 || att.Unattributed[0].Query != "phone/q3" {
		t.Fatalf("unattributed = %+v", att.Unattributed)
	}
	if att.ByKind[string(KindGPSOutage)] != 2 || att.ByKind[string(KindRadioOutage)] != 1 {
		t.Fatalf("by kind = %v", att.ByKind)
	}
}

func TestReasonClass(t *testing.T) {
	cases := map[string]string{
		"failure of wifi: finder timeout": "wifi",
		"failure of bt-gps-1: no signal":  "gps",
		"failure of phone-007-gps: x":     "gps",
		"recovery of umts":                "umts",
		"reducePower (battery-low)":       "battery",
		"failure of phone: switched off":  "phone",
	}
	for reason, want := range cases {
		if got := reasonClass(reason); got != want {
			t.Errorf("reasonClass(%q) = %q, want %q", reason, got, want)
		}
	}
}
