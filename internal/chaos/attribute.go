package chaos

import (
	"strings"
	"time"

	"contory/internal/radio"
)

// Switch is one strategy switch observed during a run, in a shape the
// attributor can consume without importing core (fleet prefixes Query with
// the phone ID so switches stay unique fleet-wide).
type Switch struct {
	At     time.Time
	Query  string
	Reason string
}

// Attribution is the result of matching switches to faults.
type Attribution struct {
	Switches     int
	Attributed   int
	ByKind       map[string]int // fault kind → switches it explains
	Unattributed []Switch
}

// DefaultGrace is how long after a fault clears its consequences (queued
// timeouts, backoff retries, failback to the recovered mechanism) may still
// legitimately surface as switches.
const DefaultGrace = 2 * time.Minute

// Attribute matches every switch to the earliest injected fault that can
// explain it: the switch's reason class must be in the fault's blast set
// and the switch must land inside [start+f.At, start+f.At+f.Duration+grace].
// Switches no fault explains come back in Unattributed — a chaos run where
// that list is non-empty had failovers with no injected cause.
func Attribute(start time.Time, faults []Fault, switches []Switch, grace time.Duration) Attribution {
	if grace <= 0 {
		grace = DefaultGrace
	}
	att := Attribution{Switches: len(switches), ByKind: make(map[string]int)}
	for _, sw := range switches {
		class := reasonClass(sw.Reason)
		matched := false
		for _, f := range faults {
			from := start.Add(f.At)
			until := from.Add(f.Duration + grace)
			if sw.At.Before(from) || sw.At.After(until) {
				continue
			}
			if faultClasses(f)[class] {
				att.Attributed++
				att.ByKind[string(f.Kind)]++
				matched = true
				break
			}
		}
		if !matched {
			att.Unattributed = append(att.Unattributed, sw)
		}
	}
	return att
}

// reasonClass maps a switch reason (a monitor event description such as
// "failure of wifi: finder timeout" or "reducePower: battery low") onto the
// resource it implicates.
func reasonClass(reason string) string {
	r := strings.TrimPrefix(reason, "failure of ")
	r = strings.TrimPrefix(r, "recovery of ")
	if i := strings.IndexByte(r, ':'); i >= 0 {
		r = r[:i]
	}
	switch {
	case strings.HasPrefix(r, "reducePower"):
		return "battery"
	case strings.HasPrefix(r, "wifi"):
		return "wifi"
	case strings.HasPrefix(r, "umts"):
		return "umts"
	case strings.Contains(r, "gps"):
		return "gps"
	}
	return r
}

// faultClasses is the blast set of a fault: the reason classes it can
// plausibly trip. Sets are generous on purpose — a GPS outage surfaces as a
// "gps" failure on the afflicted phone, but the adhoc fallback it triggers
// can then time out ("wifi") and cascade to infra ("umts"); attribution
// answers "did an injected fault explain this switch", not "which single
// hop failed".
func faultClasses(f Fault) map[string]bool {
	switch f.Kind {
	case KindLinkFlap:
		if f.Medium == radio.MediumBT {
			return map[string]bool{"gps": true, "wifi": true}
		}
		return map[string]bool{"wifi": true}
	case KindPartition, KindDegradedRSSI, KindProviderHang:
		return map[string]bool{f.Medium.String(): true, "wifi": true}
	case KindRadioOutage, KindSlowResponse:
		return map[string]bool{f.Medium.String(): true}
	case KindProviderCrash:
		return map[string]bool{"wifi": true, "umts": true, "gps": true}
	case KindGPSOutage:
		return map[string]bool{"gps": true, "wifi": true, "umts": true}
	case KindBatteryDrain:
		return map[string]bool{"wifi": true, "umts": true, "gps": true, "battery": true}
	}
	return nil
}
