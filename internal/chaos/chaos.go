// Package chaos is Contory's seeded, vclock-driven fault injector. It turns
// the hand-rolled failure scenarios of the paper's robustness evaluation
// (§6.3, Fig. 5) into a reusable subsystem: a Profile names per-kind fault
// rates, Plan expands it deterministically into a timed fault schedule, and
// an Injector replays that schedule against a simnet testbed — link
// flap/partition, radio outage, degraded RSSI, provider crash/hang/slow
// response, GPS outage, battery-driven shutdown.
//
// Every injected fault and its clearing are recorded in the metrics event
// ring (EventFaultInjected/EventFaultCleared), and Attribute matches the
// middleware's strategy switches back to the faults that plausibly caused
// them, so a fleet summary can assert that no failover happened without a
// cause.
//
// Determinism: Plan is a pure function of (profile, seed, targets,
// duration), and the Injector schedules every apply/clear through the run's
// global Scheduler, so a seeded chaos run produces byte-identical summaries
// at any worker count.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"contory/internal/metrics"
	"contory/internal/radio"
	"contory/internal/simnet"
	"contory/internal/tracing"
	"contory/internal/vclock"
)

// Kind identifies one fault species.
type Kind string

// Fault kinds, roughly ordered from link-level to device-level.
const (
	KindLinkFlap      Kind = "link-flap"      // one link fails, then recovers
	KindPartition     Kind = "partition"      // a node group is split off a medium
	KindRadioOutage   Kind = "radio-outage"   // one node's radio goes off
	KindDegradedRSSI  Kind = "degraded-rssi"  // one node's deliveries become lossy
	KindProviderCrash Kind = "provider-crash" // a node goes down entirely
	KindProviderHang  Kind = "provider-hang"  // a node stops answering (loss = 1)
	KindSlowResponse  Kind = "slow-response"  // a node's deliveries gain latency
	KindGPSOutage     Kind = "gps-outage"     // a BT-GPS device loses its fix
	KindBatteryDrain  Kind = "battery-drain"  // battery empties, device shuts down
)

// Fault is one scheduled fault: applied At after run start, cleared
// Duration later.
type Fault struct {
	ID       string        `json:"id"`
	Kind     Kind          `json:"kind"`
	At       time.Duration `json:"at"`
	Duration time.Duration `json:"duration"`
	Target   string        `json:"target,omitempty"` // primary node
	Peer     string        `json:"peer,omitempty"`   // second endpoint (link faults)
	Medium   radio.Medium  `json:"medium,omitempty"`
	Severity float64       `json:"severity,omitempty"` // degraded-rssi drop probability
	Extra    time.Duration `json:"extra,omitempty"`    // slow-response latency surcharge
	Nodes    []string      `json:"nodes,omitempty"`    // partition member side
}

// GPSDevice is the slice of gps.Device the injector needs.
type GPSDevice interface{ SetFailed(bool) }

// Target is one fault-eligible device: its simnet node ID plus optional
// handles enabling GPS and battery faults against it.
type Target struct {
	ID         string
	GPSNode    string // the paired BT-GPS node's ID, "" when none
	GPS        GPSDevice
	SetBattery func(remaining float64)
}

// Profile names per-kind fault rates (faults per minute across the whole
// target population) plus shared shape parameters. The zero value injects
// nothing.
type Profile struct {
	LinkFlapPerMin    float64
	PartitionPerMin   float64
	RadioOutagePerMin float64
	DegradedPerMin    float64
	CrashPerMin       float64
	HangPerMin        float64
	SlowPerMin        float64
	GPSOutagePerMin   float64
	BatteryPerMin     float64

	MeanDuration      time.Duration // mean fault hold time (default 30 s)
	DegradedLoss      float64       // drop probability of degraded-rssi (default 0.5)
	SlowBy            time.Duration // latency surcharge of slow-response (default 2 s)
	PartitionFraction float64       // fraction of targets split off (default 0.1)
}

// Scale multiplies every per-kind rate by r (the -chaos-rate sweep knob).
func (p Profile) Scale(r float64) Profile {
	if r < 0 {
		r = 0
	}
	p.LinkFlapPerMin *= r
	p.PartitionPerMin *= r
	p.RadioOutagePerMin *= r
	p.DegradedPerMin *= r
	p.CrashPerMin *= r
	p.HangPerMin *= r
	p.SlowPerMin *= r
	p.GPSOutagePerMin *= r
	p.BatteryPerMin *= r
	return p
}

// Profiles are the named chaos profiles accepted by fleet.ChaosSpec and the
// -chaos flag of contory-load.
var Profiles = map[string]Profile{
	"flap":      {LinkFlapPerMin: 4},
	"partition": {PartitionPerMin: 0.5},
	"outage":    {RadioOutagePerMin: 1.5, CrashPerMin: 0.5},
	"hang":      {HangPerMin: 1, SlowPerMin: 1},
	"gps":       {GPSOutagePerMin: 1},
	"battery":   {BatteryPerMin: 0.5},
	"mixed": {
		LinkFlapPerMin: 2, PartitionPerMin: 0.25, RadioOutagePerMin: 0.5,
		DegradedPerMin: 0.5, CrashPerMin: 0.25, HangPerMin: 0.5,
		SlowPerMin: 0.5, GPSOutagePerMin: 0.5, BatteryPerMin: 0.25,
	},
}

// ProfileNames returns the registered profile names, sorted.
func ProfileNames() []string {
	out := make([]string, 0, len(Profiles))
	for n := range Profiles {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// planDefaults fills the profile's shape parameters.
func planDefaults(p Profile) Profile {
	if p.MeanDuration <= 0 {
		p.MeanDuration = 30 * time.Second
	}
	if p.DegradedLoss <= 0 {
		p.DegradedLoss = 0.5
	}
	if p.SlowBy <= 0 {
		p.SlowBy = 2 * time.Second
	}
	if p.PartitionFraction <= 0 {
		p.PartitionFraction = 0.1
	}
	return p
}

// Plan expands a profile into a concrete fault schedule: a pure function of
// its inputs, so identically-seeded plans are identical regardless of how
// the run later executes. Faults whose kind needs a capability no target
// has (GPS, battery) are skipped. The result is sorted by injection time.
func Plan(p Profile, seed int64, targets []Target, duration time.Duration) []Fault {
	if len(targets) == 0 || duration <= 0 {
		return nil
	}
	p = planDefaults(p)
	rng := rand.New(rand.NewSource(seed))

	var gpsTargets, batTargets []Target
	for _, t := range targets {
		if t.GPS != nil {
			gpsTargets = append(gpsTargets, t)
		}
		if t.SetBattery != nil {
			batTargets = append(batTargets, t)
		}
	}

	// drawCount turns a fractional per-minute rate into this minute's count
	// (the fleet churn pattern: integer part plus one probabilistic draw).
	drawCount := func(rate float64) int {
		n := int(rate)
		if frac := rate - float64(n); frac > 0 && rng.Float64() < frac {
			n++
		}
		return n
	}
	pick := func(ts []Target) Target { return ts[rng.Intn(len(ts))] }

	var faults []Fault
	minutes := int(duration / time.Minute)
	for m := 0; m < minutes; m++ {
		base := time.Duration(m) * time.Minute
		stamp := func(f Fault) Fault {
			f.At = base + time.Duration(rng.Int63n(int64(time.Minute)))
			f.Duration = p.MeanDuration/2 + time.Duration(rng.Int63n(int64(p.MeanDuration)))
			return f
		}
		// Fixed kind order: changing it changes every seeded plan.
		for i := 0; i < drawCount(p.LinkFlapPerMin); i++ {
			t := pick(targets)
			f := Fault{Kind: KindLinkFlap, Target: t.ID}
			if t.GPSNode != "" {
				// Flap the phone's BT link to its GPS: the Fig. 5 scenario.
				f.Peer, f.Medium = t.GPSNode, radio.MediumBT
			} else {
				f.Peer, f.Medium = pick(targets).ID, radio.MediumWiFi
			}
			faults = append(faults, stamp(f))
		}
		for i := 0; i < drawCount(p.PartitionPerMin); i++ {
			count := int(p.PartitionFraction * float64(len(targets)))
			if count < 1 {
				count = 1
			}
			start := rng.Intn(len(targets))
			nodes := make([]string, 0, count)
			for j := 0; j < count; j++ {
				nodes = append(nodes, targets[(start+j)%len(targets)].ID)
			}
			faults = append(faults, stamp(Fault{
				Kind: KindPartition, Target: nodes[0], Medium: radio.MediumWiFi, Nodes: nodes,
			}))
		}
		for i := 0; i < drawCount(p.RadioOutagePerMin); i++ {
			medium := radio.MediumWiFi
			if rng.Intn(3) == 0 {
				medium = radio.MediumUMTS
			}
			faults = append(faults, stamp(Fault{
				Kind: KindRadioOutage, Target: pick(targets).ID, Medium: medium,
			}))
		}
		for i := 0; i < drawCount(p.DegradedPerMin); i++ {
			faults = append(faults, stamp(Fault{
				Kind: KindDegradedRSSI, Target: pick(targets).ID,
				Medium: radio.MediumWiFi, Severity: p.DegradedLoss,
			}))
		}
		for i := 0; i < drawCount(p.CrashPerMin); i++ {
			faults = append(faults, stamp(Fault{
				Kind: KindProviderCrash, Target: pick(targets).ID,
			}))
		}
		for i := 0; i < drawCount(p.HangPerMin); i++ {
			faults = append(faults, stamp(Fault{
				Kind: KindProviderHang, Target: pick(targets).ID,
				Medium: radio.MediumWiFi, Severity: 1,
			}))
		}
		for i := 0; i < drawCount(p.SlowPerMin); i++ {
			medium := radio.MediumWiFi
			if rng.Intn(2) == 0 {
				medium = radio.MediumUMTS
			}
			faults = append(faults, stamp(Fault{
				Kind: KindSlowResponse, Target: pick(targets).ID,
				Medium: medium, Extra: p.SlowBy,
			}))
		}
		if len(gpsTargets) > 0 {
			for i := 0; i < drawCount(p.GPSOutagePerMin); i++ {
				faults = append(faults, stamp(Fault{
					Kind: KindGPSOutage, Target: pick(gpsTargets).ID,
				}))
			}
		}
		if len(batTargets) > 0 {
			for i := 0; i < drawCount(p.BatteryPerMin); i++ {
				faults = append(faults, stamp(Fault{
					Kind: KindBatteryDrain, Target: pick(batTargets).ID,
				}))
			}
		}
	}

	sort.SliceStable(faults, func(i, j int) bool {
		if faults[i].At != faults[j].At {
			return faults[i].At < faults[j].At
		}
		if faults[i].Kind != faults[j].Kind {
			return faults[i].Kind < faults[j].Kind
		}
		return faults[i].Target < faults[j].Target
	})
	for i := range faults {
		faults[i].ID = fmt.Sprintf("fault-%04d", i)
	}
	return faults
}

// Scheduler schedules a callback after a delay on the run's global ordering
// domain. *contory.World satisfies it directly (its After runs global
// barrier events between lane batches, which is exactly what keeps chaos
// deterministic under parallel execution); SimClock adapts a bare
// vclock.Clock for single-testbed use.
type Scheduler interface {
	After(d time.Duration, fn func())
}

// SimClock adapts a vclock.Clock (whose After returns a *vclock.Timer) to
// the Scheduler interface.
type SimClock struct{ C vclock.Clock }

// After implements Scheduler.
func (s SimClock) After(d time.Duration, fn func()) { s.C.After(d, fn) }

// Injector replays a fault plan against a testbed, recording every apply
// and clear in the metrics event ring so failovers are attributable.
type Injector struct {
	net     *simnet.Network
	sched   Scheduler
	reg     *metrics.Registry
	tracer  *tracing.Tracer
	targets map[string]Target
	faults  []Fault

	mu    sync.Mutex
	parts map[string]int // fault ID → partition handle
}

// NewInjector wires an injector. reg may be nil (no events recorded).
func NewInjector(net *simnet.Network, sched Scheduler, reg *metrics.Registry, targets []Target, faults []Fault) *Injector {
	byID := make(map[string]Target, len(targets))
	for _, t := range targets {
		byID[t.ID] = t
	}
	return &Injector{
		net:     net,
		sched:   sched,
		reg:     reg,
		targets: byID,
		faults:  append([]Fault(nil), faults...),
		parts:   make(map[string]int),
	}
}

// Faults returns the injector's schedule.
func (in *Injector) Faults() []Fault {
	return append([]Fault(nil), in.faults...)
}

// SetTracer attaches a tracer; spans started on faulted nodes while a fault
// holds are annotated with the fault's ID and kind (nil detaches).
func (in *Injector) SetTracer(tr *tracing.Tracer) { in.tracer = tr }

// faultNodes lists every node a fault blasts: the primary target, the link
// peer, and partition members.
func faultNodes(f Fault) []string {
	nodes := make([]string, 0, 2+len(f.Nodes))
	nodes = append(nodes, f.Target)
	if f.Peer != "" {
		nodes = append(nodes, f.Peer)
	}
	for _, n := range f.Nodes {
		if n != f.Target {
			nodes = append(nodes, n)
		}
	}
	return nodes
}

// Install schedules every fault's apply and clear on the Scheduler. Call
// once, before the run starts.
func (in *Injector) Install() {
	for _, f := range in.faults {
		f := f
		in.sched.After(f.At, func() { in.apply(f) })
		in.sched.After(f.At+f.Duration, func() { in.clear(f) })
	}
}

func (in *Injector) apply(f Fault) {
	switch f.Kind {
	case KindLinkFlap:
		in.net.FailLink(simnet.NodeID(f.Target), simnet.NodeID(f.Peer), f.Medium)
	case KindPartition:
		ids := make([]simnet.NodeID, len(f.Nodes))
		for i, n := range f.Nodes {
			ids[i] = simnet.NodeID(n)
		}
		pid := in.net.Partition(f.Medium, ids...)
		in.mu.Lock()
		in.parts[f.ID] = pid
		in.mu.Unlock()
	case KindRadioOutage:
		if n := in.net.Node(simnet.NodeID(f.Target)); n != nil {
			n.SetRadio(f.Medium, false)
		}
	case KindDegradedRSSI, KindProviderHang:
		in.net.SetNodeLoss(simnet.NodeID(f.Target), f.Medium, f.Severity)
	case KindSlowResponse:
		in.net.SetNodeDelay(simnet.NodeID(f.Target), f.Medium, f.Extra)
	case KindProviderCrash:
		if n := in.net.Node(simnet.NodeID(f.Target)); n != nil {
			n.SetDown(true)
		}
	case KindGPSOutage:
		if t, ok := in.targets[f.Target]; ok && t.GPS != nil {
			t.GPS.SetFailed(true)
		}
	case KindBatteryDrain:
		if t, ok := in.targets[f.Target]; ok && t.SetBattery != nil {
			t.SetBattery(0)
		}
		if n := in.net.Node(simnet.NodeID(f.Target)); n != nil {
			n.SetDown(true)
		}
	}
	in.tracer.FaultActive(f.ID, string(f.Kind), faultNodes(f))
	in.record(metrics.EventFaultInjected, f)
	in.reg.Counter("chaos.faults.injected").Inc()
	in.reg.Counter("chaos.faults.injected." + string(f.Kind)).Inc()
}

func (in *Injector) clear(f Fault) {
	switch f.Kind {
	case KindLinkFlap:
		in.net.RestoreLink(simnet.NodeID(f.Target), simnet.NodeID(f.Peer), f.Medium)
	case KindPartition:
		in.mu.Lock()
		pid, ok := in.parts[f.ID]
		delete(in.parts, f.ID)
		in.mu.Unlock()
		if ok {
			in.net.Heal(pid)
		}
	case KindRadioOutage:
		if n := in.net.Node(simnet.NodeID(f.Target)); n != nil {
			n.SetRadio(f.Medium, true)
		}
	case KindDegradedRSSI, KindProviderHang:
		in.net.SetNodeLoss(simnet.NodeID(f.Target), f.Medium, 0)
	case KindSlowResponse:
		in.net.SetNodeDelay(simnet.NodeID(f.Target), f.Medium, 0)
	case KindProviderCrash:
		if n := in.net.Node(simnet.NodeID(f.Target)); n != nil {
			n.SetDown(false)
		}
	case KindGPSOutage:
		if t, ok := in.targets[f.Target]; ok && t.GPS != nil {
			t.GPS.SetFailed(false)
		}
	case KindBatteryDrain:
		if t, ok := in.targets[f.Target]; ok && t.SetBattery != nil {
			t.SetBattery(1)
		}
		if n := in.net.Node(simnet.NodeID(f.Target)); n != nil {
			n.SetDown(false)
		}
	}
	in.tracer.FaultCleared(f.ID)
	in.record(metrics.EventFaultCleared, f)
	in.reg.Counter("chaos.faults.cleared").Inc()
}

// record stamps a fault lifecycle event into the shared ring: Query carries
// the fault ID, Mechanism the fault kind, Detail the blast target — enough
// to trace a nearby switched event back to its cause.
func (in *Injector) record(kind metrics.EventKind, f Fault) {
	detail := f.Target
	if f.Peer != "" {
		detail += "↔" + f.Peer
	}
	if f.Medium != 0 {
		detail += " over " + f.Medium.String()
	}
	in.reg.Record(metrics.Event{
		At:        in.net.Clock().Now(),
		Query:     f.ID,
		Kind:      kind,
		Mechanism: string(f.Kind),
		Detail:    detail,
	})
}
