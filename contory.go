package contory

import (
	"contory/internal/audit"
	"contory/internal/core"
	"contory/internal/cxt"
	"contory/internal/metrics"
	"contory/internal/provider"
	"contory/internal/qos"
	"contory/internal/query"
	"contory/internal/repo"
	"contory/internal/timeline"
)

// Context data model (§4.1 of the paper).
type (
	// Item is one context item: type, value, timestamp, lifetime, source
	// and quality metadata.
	Item = cxt.Item
	// Metadata carries the quality attributes usable in WHERE clauses.
	Metadata = cxt.Metadata
	// Source identifies what produced an item.
	Source = cxt.Source
	// Fix is a GPS position value for location items.
	Fix = cxt.Fix
	// Type is a context category.
	Type = cxt.Type
)

// Context types from the CxtVocabulary.
const (
	TypeLocation    = cxt.TypeLocation
	TypeSpeed       = cxt.TypeSpeed
	TypeTemperature = cxt.TypeTemperature
	TypeWind        = cxt.TypeWind
	TypeHumidity    = cxt.TypeHumidity
	TypePressure    = cxt.TypePressure
	TypeWeather     = cxt.TypeWeather
	TypeLight       = cxt.TypeLight
	TypeNoise       = cxt.TypeNoise
	TypeActivity    = cxt.TypeActivity
)

// Query language (§4.2).
type (
	// Query is a parsed context query.
	Query = query.Query
	// QuerySource is the parsed FROM clause.
	QuerySource = query.Source
)

// ParseQuery parses a context query in the SELECT/FROM/WHERE/FRESHNESS/
// DURATION/EVERY/EVENT template syntax.
func ParseQuery(src string) (*Query, error) { return query.Parse(src) }

// MustParseQuery is ParseQuery that panics on error; for constant query
// text in examples and tests.
func MustParseQuery(src string) *Query { return query.MustParse(src) }

// MergeQueries applies the §4.3 clause-wise merging rules, returning a
// query whose results cover both inputs.
func MergeQueries(a, b *Query) (*Query, error) { return query.Merge(a, b) }

// Middleware core (§4.3–4.4).
type (
	// Client is the application interface: receiveCxtItem, informError
	// and makeDecision.
	Client = core.Client
	// Factory is the ContextFactory: the per-device middleware endpoint.
	Factory = core.Factory
	// Device bundles a phone's references, monitor, repository and access
	// controller.
	Device = core.Device
	// Mechanism identifies a provisioning mechanism.
	Mechanism = core.Mechanism
	// SwitchEvent records one dynamic strategy switch.
	SwitchEvent = core.SwitchEvent
	// Subscription is the handle returned by ProcessCxtQuery: the query id
	// plus methods to inspect the serving mechanism, read delivery stats and
	// cancel the query.
	Subscription = core.Subscription
	// SubscriptionStats describes a query's delivery state on the shared
	// provisioning plane: items delivered, answers served from the cache,
	// and whether the query shares a live provider stream.
	SubscriptionStats = core.SubscriptionStats
	// Option configures a Factory at construction time.
	Option = core.Option
	// RetryPolicy is a request retry/timeout/backoff posture, applied
	// uniformly across the remote references via WithRetryPolicy.
	RetryPolicy = core.RetryPolicy
	// Repository is the read-only view of a device's context repository
	// returned by Factory.Repository: applications inspect cached context
	// (Latest/Recent/Fresh/Types) without being able to mutate the store.
	Repository = repo.Reader
)

// Factory construction options.
var (
	// WithMerging enables or disables query aggregation (default on).
	WithMerging = core.WithMerging
	// WithFailover enables or disables dynamic strategy switching
	// (default on).
	WithFailover = core.WithFailover
	// WithPreferBTOneHop makes one-hop ad hoc queries prefer Bluetooth.
	WithPreferBTOneHop = core.WithPreferBTOneHop
	// WithMetrics shares a metrics registry with the factory.
	WithMetrics = core.WithMetrics
	// WithRetryPolicy applies one retry/timeout/backoff posture across the
	// Bluetooth and WiFi references.
	WithRetryPolicy = core.WithRetryPolicy
	// WithRequestTimeout bounds each remote request attempt at d, leaving
	// retry counts untouched.
	WithRequestTimeout = core.WithRequestTimeout
	// WithAnswerCache enables the answer cache: queries satisfiable by
	// stored context are served with zero provider work.
	WithAnswerCache = core.WithAnswerCache
	// WithCacheTTL bounds cache staleness for types without lifetime-derived
	// TTLs.
	WithCacheTTL = core.WithCacheTTL
	// WithQoS enables the QoS provisioning plane: per-client admission
	// control, deadline/priority-aware scheduling of deferred queries, and
	// deterministic overload shedding by measured energy cost.
	WithQoS = core.WithQoS
	// WithAudit attaches a runtime invariant auditor: the factory's
	// lifecycle, slot, refcount, timer and accounting transitions are
	// continuously checked against the plane's conservation laws.
	WithAudit = core.WithAudit
)

// Runtime invariant auditing (the conservation-law checker verified
// continuously during fleet runs).
type (
	// Auditor is the vclock-stamped runtime invariant checker shared across
	// factories via WithAudit; nil disables auditing at zero cost.
	Auditor = audit.Auditor
	// AuditViolation is one detected conservation-law breach.
	AuditViolation = audit.Violation
	// AuditReport summarizes an auditor: checks performed, live timers and
	// violations in deterministic vclock order.
	AuditReport = audit.Report
)

// NewAuditor returns an empty runtime invariant auditor.
func NewAuditor() *Auditor { return audit.New() }

// QoS provisioning plane (admission control, scheduling, overload
// shedding).
type (
	// QoSConfig configures the QoS plane passed to WithQoS.
	QoSConfig = qos.Config
	// QoSClass is a scheduling priority class (interactive, standard,
	// bulk); QoSAuto derives the class from query attributes.
	QoSClass = qos.Class
)

// QoS scheduling classes.
const (
	QoSAuto        = qos.ClassAuto
	QoSInteractive = qos.ClassInteractive
	QoSStandard    = qos.ClassStandard
	QoSBulk        = qos.ClassBulk
)

// ErrQoSRejected is wrapped into ProcessCxtQuery errors when admission
// control turns a query away; match with errors.Is.
var ErrQoSRejected = qos.ErrRejected

// NewFactory wires a ContextFactory onto a device.
func NewFactory(dev *Device, opts ...Option) *Factory {
	return core.NewFactory(dev, opts...)
}

// Observability (middleware-wide metrics and query-lifecycle events).
type (
	// MetricsRegistry is a named set of counters, gauges, histograms and a
	// bounded query-lifecycle event ring.
	MetricsRegistry = metrics.Registry
	// MetricsSnapshot is a deterministic point-in-time view of a registry.
	MetricsSnapshot = metrics.Snapshot
)

// NewMetricsRegistry returns an empty metrics registry, for sharing across
// factories via WithMetrics.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// Flight recorder (periodic metric timelines, SLO evaluation and burn-rate
// alerting). Arm it per factory with WithTimeline, or world-wide with
// WorldConfig.Timeline so one window stream covers the whole testbed.
type (
	// TimelineConfig configures the flight recorder: sampling interval,
	// window ring bound, objectives and burn-rate gates.
	TimelineConfig = timeline.Config
	// TimelineSLO is one declarative objective ("p99_first_item_ms<5000").
	TimelineSLO = timeline.SLO
	// TimelineRecorder samples a registry into delta-windows and evaluates
	// objectives; read it with its Report method after the run.
	TimelineRecorder = timeline.Recorder
	// TimelineReport is the recorder outcome: retained windows, per-SLO
	// worst-window table and the vclock-stamped alert log.
	TimelineReport = timeline.Report
	// TimelineAlert is one fired burn-rate alert with cause attribution.
	TimelineAlert = timeline.Alert
)

// WithTimeline arms the flight recorder on a standalone factory's registry.
var WithTimeline = core.WithTimeline

// ParseSLOList parses a comma-separated objective list in the -slo flag
// syntax ("p99_first_item_ms<5000,cache_hit_ratio>0.5").
func ParseSLOList(list string) ([]TimelineSLO, error) { return timeline.ParseSLOList(list) }

// Provisioning mechanisms. MechanismCache marks queries served from the
// answer cache with zero provider work.
const (
	MechanismLocal = core.MechanismLocal
	MechanismAdHoc = core.MechanismAdHoc
	MechanismInfra = core.MechanismInfra
	MechanismCache = core.MechanismCache
	// MechanismPending marks queries parked in the QoS admission queue,
	// waiting for a token or a free provisioning slot.
	MechanismPending = core.MechanismPending
)

// Publishing (§4.3 CxtPublisher).
type (
	// PublishOptions configures a context item publication.
	PublishOptions = provider.PublishOptions
	// Transport selects BT or WiFi for ad hoc operations.
	Transport = provider.Transport
	// AccessMode is public or authenticated item access.
	AccessMode = provider.AccessMode
)

// Transports and access modes.
const (
	TransportBT         = provider.TransportBT
	TransportWiFi       = provider.TransportWiFi
	PublicAccess        = provider.PublicAccess
	AuthenticatedAccess = provider.AuthenticatedAccess
)

// ClientFuncs adapts plain functions to the Client interface; nil fields
// get sensible defaults (errors dropped, decisions granted). ID and
// Priority feed the QoS plane when it is enabled: clients sharing an ID
// share one admission token bucket (empty = the "default" bucket), and
// Priority pins the scheduling class (QoSAuto derives it per query).
type ClientFuncs struct {
	OnItem     func(Item)
	OnError    func(string)
	OnDecision func(string) bool
	ID         string
	Priority   QoSClass
}

var (
	_ Client              = ClientFuncs{}
	_ core.ClientIdentity = ClientFuncs{}
	_ core.ClientPriority = ClientFuncs{}
)

// ClientID implements the QoS plane's ClientIdentity extension.
func (c ClientFuncs) ClientID() string { return c.ID }

// QoSClass implements the QoS plane's ClientPriority extension.
func (c ClientFuncs) QoSClass() QoSClass { return c.Priority }

// ReceiveCxtItem implements Client.
func (c ClientFuncs) ReceiveCxtItem(it Item) {
	if c.OnItem != nil {
		c.OnItem(it)
	}
}

// InformError implements Client.
func (c ClientFuncs) InformError(msg string) {
	if c.OnError != nil {
		c.OnError(msg)
	}
}

// MakeDecision implements Client.
func (c ClientFuncs) MakeDecision(msg string) bool {
	if c.OnDecision == nil {
		return true
	}
	return c.OnDecision(msg)
}
