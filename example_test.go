package contory_test

import (
	"fmt"
	"time"

	"contory"
)

// Example shows the complete life of a context query: two phones in an ad
// hoc WiFi network, one publishing a temperature item, the other asking
// for it periodically with the SQL-like query language.
func Example() {
	world, err := contory.NewWorld(42)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	alice, err := world.AddPhone(contory.PhoneConfig{ID: "alice"})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	bob, err := world.AddPhone(contory.PhoneConfig{ID: "bob"})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if err := world.Link("alice", "bob", "wifi"); err != nil {
		fmt.Println("error:", err)
		return
	}

	bob.PublishTag(contory.TypeTemperature, 14.0)

	q := contory.MustParseQuery(`
		SELECT temperature
		FROM adHocNetwork(all,1)
		DURATION 3 samples
		EVERY 30 sec`)
	received := 0
	client := contory.ClientFuncs{OnItem: func(it contory.Item) {
		received++
		fmt.Printf("item %d: %v from %s\n", received, it.Value, it.Source)
	}}
	if _, err := alice.Factory.ProcessCxtQuery(q, client); err != nil {
		fmt.Println("error:", err)
		return
	}
	world.Run(2 * time.Minute)
	fmt.Printf("done after %d items\n", received)
	// Output:
	// item 1: 14 from adHocNode:bob
	// item 2: 14 from adHocNode:bob
	// item 3: 14 from adHocNode:bob
	// done after 3 items
}

// ExampleParseQuery parses the paper's §4.2 example query and prints its
// canonical form.
func ExampleParseQuery() {
	q, err := contory.ParseQuery(
		"SELECT temperature FROM adHocNetwork(10,3) WHERE accuracy=0.2 " +
			"FRESHNESS 30 sec DURATION 1 hour EVENT AVG(temperature)>25")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(q)
	fmt.Println("mode:", q.Mode())
	// Output:
	// SELECT temperature
	// FROM adHocNetwork(10,3)
	// WHERE accuracy=0.2
	// FRESHNESS 30 sec
	// DURATION 1 hour
	// EVENT AVG(temperature)>25
	// mode: event-based
}

// ExampleMergeQueries reproduces the §4.3 query-merging table.
func ExampleMergeQueries() {
	q1 := contory.MustParseQuery("SELECT temperature FROM adHocNetwork(all,3) FRESHNESS 10sec DURATION 1hour EVERY 15sec")
	q2 := contory.MustParseQuery("SELECT temperature FROM adHocNetwork(all,1) FRESHNESS 20sec DURATION 2hour EVERY 30sec")
	q3, err := contory.MergeQueries(q1, q2)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(q3)
	// Output:
	// SELECT temperature
	// FROM adHocNetwork(all,3)
	// FRESHNESS 20 sec
	// DURATION 2 hour
	// EVERY 15 sec
}
