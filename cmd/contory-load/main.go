// Command contory-load drives the fleet-scale load engine: it expands a
// seeded scenario into thousands of simulated phones, runs them for a span
// of virtual time across a parallel worker pool, and reports the fleet
// summary (queries/s of virtual time, delivery-latency percentiles, energy
// per device class, failover counts).
//
// Usage:
//
//	contory-load -phones 5000 -duration 10m -stats-out BENCH_fleet.json
//	contory-load -phones 1000 -duration 5m -workers 8 -stats
//	contory-load -sweep 1000,2000,5000 -duration 10m -bench-out BENCH_fleet.json
//
// Same seed, same summary bytes — at any -workers value or GOMAXPROCS.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"contory/internal/fleet"
	"contory/internal/timeline"
	"contory/internal/tracing"
)

func main() {
	var (
		phones   = flag.Int("phones", 1000, "fleet population size")
		duration = flag.Duration("duration", 10*time.Minute, "virtual time to run")
		seed     = flag.Int64("seed", 42, "deterministic scenario seed")
		workers  = flag.Int("workers", 0, "parallel event workers (0 = GOMAXPROCS)")
		lanes    = flag.Int("lanes", 0, "device shard lanes (0 = auto)")
		area     = flag.Float64("area", 0, "deployment area side in metres (0 = auto-size for ~10 WiFi neighbors)")
		period   = flag.Duration("period", 30*time.Second, "base query/workload period")
		mobility = flag.Float64("mobility", 1.0, "max phone speed in m/s (0 = static)")
		leave    = flag.Float64("churn-leave", 0.02, "per-phone leave/join probability per virtual minute")
		links    = flag.Float64("churn-links", 5, "expected WiFi link failures per virtual minute")
		chaosP   = flag.String("chaos", "", "chaos profile to inject (flap, partition, outage, hang, gps, battery, mixed; \"\" = off)")
		chaosR   = flag.Float64("chaos-rate", 1.0, "scale factor on the chaos profile's fault rates")
		gpsFrac  = flag.Float64("gps", 0, "fraction of phones carrying a BT-GPS receiver (enables the gps-periodic workload)")
		cacheOn  = flag.Bool("cache", false, "enable the per-phone answer cache (shared provisioning plane)")
		cacheTTL = flag.Duration("cache-ttl", 0, "cache staleness bound for types without item lifetimes (0 = 2x -period)")
		dupFrac  = flag.Float64("dup", 0, "fraction of phones running the duplicate-heavy workload; replaces the default mix (bursts of identical cacheable extInfra queries)")
		qosOn    = flag.Bool("qos", false, "enable the QoS provisioning plane (admission control, deadline-aware scheduling, overload shedding)")
		qosRate  = flag.Float64("qos-rate", 0, "per-client sustained admission rate in queries/s when -qos is on (0 = default)")
		qosBurst = flag.Int("qos-burst", 0, "per-client admission burst size when -qos is on (0 = default)")
		qosQueue = flag.Int("qos-queue", 0, "pending-query queue bound per phone when -qos is on (0 = default)")
		qosSlots = flag.Int("qos-slots", 0, "concurrent live-provisioning slots per phone when -qos is on (0 = default)")
		overload = flag.Float64("overload", 0, "fraction of phones running the overload-burst workload; replaces the default mix (bursts of distinct tight-FRESHNESS extInfra queries that serialize on the UMTS channel)")
		auditOn  = flag.Bool("audit", false, "run the conservation-law auditor over the fleet (quiesces the run, checks slot/refcount/timer/accounting invariants; violations fail the run)")
		stats    = flag.Bool("stats", false, "print the full summary JSON to stdout")
		statsOut = flag.String("stats-out", "", "write the run summary JSON to this file")
		benchOut = flag.String("bench-out", "", "write sweep wall-clock timings JSON to this file")
		benchGo  = flag.String("bench-go", "", "append sweep timings in Go benchmark format to this file (benchstat-friendly)")
		sweep    = flag.String("sweep", "", "comma-separated phone counts to run back to back (e.g. 1000,2000,5000)")
		traceOn  = flag.Bool("trace", false, "record per-query span trees (deterministic distributed tracing)")
		traceOut = flag.String("trace-out", "", "write retained traces as Chrome trace-event JSON (open in Perfetto); implies -trace")
		traceSmp = flag.Int("trace-sample", 0, "keep one trace in N by trace-id residue (<=1 keeps all)")
		tlOn     = flag.Bool("timeline", false, "arm the flight recorder: periodic metric delta-windows, SLO evaluation and burn-rate alerting")
		tlEvery  = flag.Duration("timeline-interval", 10*time.Second, "flight-recorder sampling window in virtual time")
		tlSLO    = flag.String("slo", "", "comma-separated SLO objectives evaluated per window (e.g. p99_first_item_ms<5000,cache_hit_ratio>0.5); implies -timeline")
		tlOut    = flag.String("timeline-out", "", "write the flight-recorder report JSON to this file; implies -timeline")
		pprofAt  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for the run's lifetime")
	)
	flag.Parse()
	if *tlSLO != "" || *tlOut != "" {
		*tlOn = true
	}
	if err := validateFlags(*phones, *duration, *workers, *qosRate, *overload, *auditOn, *sweep, *benchOut, *tlOn, *tlEvery); err != nil {
		fail(err)
	}
	slos, err := timeline.ParseSLOList(*tlSLO)
	if err != nil {
		fail(err)
	}
	if *traceOut != "" {
		*traceOn = true
	}
	if *pprofAt != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAt, nil); err != nil {
				fmt.Fprintln(os.Stderr, "contory-load: pprof:", err)
			}
		}()
		fmt.Fprintln(os.Stderr, "pprof listening on", *pprofAt)
	}

	specFor := func(n int) fleet.Spec {
		spec := fleet.Spec{
			Name:            fmt.Sprintf("load-%d", n),
			Phones:          n,
			Seed:            *seed,
			Duration:        *duration,
			AreaMetres:      *area,
			Lanes:           *lanes,
			MobilitySpeedMS: *mobility,
			GPSFraction:     *gpsFrac,
			Workload:        fleet.Workload{Period: *period},
			Churn:           fleet.Churn{LeaveJoinPerMin: *leave, LinkFailuresPerMin: *links},
			Chaos:           fleet.ChaosSpec{Profile: *chaosP, Rate: *chaosR},
			Trace:           fleet.TraceSpec{Enabled: *traceOn, Sample: *traceSmp},
			Cache:           fleet.CacheSpec{Enabled: *cacheOn, TTL: *cacheTTL},
			QoS: fleet.QoSSpec{
				Enabled: *qosOn, Rate: *qosRate, Burst: *qosBurst,
				QueueCap: *qosQueue, MaxActive: *qosSlots,
			},
			Audit: fleet.AuditSpec{Enabled: *auditOn},
			Timeline: fleet.TimelineSpec{
				Enabled:  *tlOn,
				Interval: *tlEvery,
				SLOs:     slos,
			},
		}
		if *dupFrac > 0 {
			// A pure duplicate-heavy fleet: the cleanest cache-on-vs-off
			// comparison at identical seeds.
			spec.Workload = fleet.Workload{DupHeavy: *dupFrac, Period: *period}
		}
		if *overload > 0 {
			// A pure overload fleet: the cleanest qos-on-vs-off comparison
			// at identical seeds (pair with -cache so the QoS plane can
			// degrade the burst tail to stale-cache answers).
			spec.Workload = fleet.Workload{Overload: *overload, Period: *period}
		}
		if *gpsFrac > 0 {
			// GPS carriers run the failover-exercising location workload
			// alongside the default mix.
			spec.Workload = fleet.Workload{
				GPSPeriodic:   0.4,
				LocalPeriodic: 0.2,
				AdHocPeriodic: 0.1,
				InfraOneShot:  0.2,
				Period:        *period,
			}
		}
		return spec
	}

	if *sweep != "" {
		if err := runSweep(*sweep, specFor, *workers, *benchOut, *benchGo); err != nil {
			fail(err)
		}
		return
	}

	sum, eng, wall, mem, err := runOne(specFor(*phones), *workers)
	if err != nil {
		fail(err)
	}
	printSummary(sum, wall)
	if sum.Audit != nil && len(sum.Audit.Violations) > 0 {
		for _, v := range sum.Audit.Violations {
			fmt.Fprintln(os.Stderr, "contory-load: audit:", v)
		}
		fail(fmt.Errorf("audit found %d invariant violations", len(sum.Audit.Violations)))
	}
	if *traceOut != "" {
		if err := exportTraces(eng, *traceOut, sum.Timeline); err != nil {
			fail(err)
		}
		fmt.Fprintln(os.Stderr, "chrome trace written to", *traceOut)
	}
	if *tlOut != "" {
		if sum.Timeline == nil {
			fail(fmt.Errorf("run recorded no timeline"))
		}
		js, err := json.MarshalIndent(sum.Timeline, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := writeFile(*tlOut, append(js, '\n')); err != nil {
			fail(err)
		}
		fmt.Fprintln(os.Stderr, "timeline report written to", *tlOut)
	}
	if *stats {
		js, err := sum.JSON()
		if err != nil {
			fail(err)
		}
		fmt.Println(string(js))
	}
	if *statsOut != "" {
		js, err := sum.JSON()
		if err != nil {
			fail(err)
		}
		if err := writeFile(*statsOut, append(js, '\n')); err != nil {
			fail(err)
		}
		fmt.Fprintln(os.Stderr, "fleet summary written to", *statsOut)
	}
	if *benchOut != "" || *benchGo != "" {
		entry := benchEntry(sum, wall, mem)
		if *benchOut != "" {
			data, err := json.MarshalIndent(benchDoc{Bench: "fleet", Runs: []benchRun{entry}}, "", "  ")
			if err != nil {
				fail(err)
			}
			if err := writeFile(*benchOut, append(data, '\n')); err != nil {
				fail(err)
			}
			fmt.Fprintln(os.Stderr, "bench timings written to", *benchOut)
		}
		if *benchGo != "" {
			if err := appendFile(*benchGo, []byte(benchGoLine(entry))); err != nil {
				fail(err)
			}
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "contory-load:", err)
	os.Exit(1)
}

// validateFlags rejects flag values that would otherwise surface as a
// confusing engine panic or an instantly-finished run. -workers keeps 0 as
// its documented "use GOMAXPROCS" sentinel; only negatives are refused.
func validateFlags(phones int, duration time.Duration, workers int, qosRate, overload float64, audit bool, sweep, benchOut string, timelineOn bool, timelineInterval time.Duration) error {
	if phones <= 0 {
		return fmt.Errorf("-phones must be positive, got %d", phones)
	}
	if duration <= 0 {
		return fmt.Errorf("-duration must be positive, got %s", duration)
	}
	if workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (0 = GOMAXPROCS), got %d", workers)
	}
	if qosRate < 0 {
		return fmt.Errorf("-qos-rate must be >= 0 (0 = default), got %g", qosRate)
	}
	if overload < 0 || overload > 1 {
		return fmt.Errorf("-overload must be a fraction in [0, 1], got %g", overload)
	}
	if audit && (sweep != "" || benchOut != "") {
		return fmt.Errorf("-audit quiesces each run with a virtual-time drain, which would skew -sweep/-bench-out timings; audit a single run without -bench-out")
	}
	if timelineOn && timelineInterval <= 0 {
		return fmt.Errorf("-timeline-interval must be positive, got %s", timelineInterval)
	}
	return nil
}

// benchMem is the allocation profile of one run, measured by
// runtime.ReadMemStats deltas around the engine execution: total heap
// allocations and bytes during the run, plus the process heap high-water
// mark (HeapSys) after it. Future perf PRs gate on allocation per event as
// well as throughput.
type benchMem struct {
	allocs   uint64
	bytes    uint64
	peakHeap uint64
}

// runOne builds and runs one scenario, returning its summary, the engine
// (for post-run trace export), the wall-clock time the run took and its
// allocation profile. The run executes under pprof labels so CPU profiles
// split by scenario.
func runOne(spec fleet.Spec, workers int) (fleet.Summary, *fleet.Engine, time.Duration, benchMem, error) {
	e, err := fleet.New(spec)
	if err != nil {
		return fleet.Summary{}, nil, 0, benchMem{}, err
	}
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	var sum fleet.Summary
	labels := pprof.Labels("scenario", spec.Name, "phones", strconv.Itoa(spec.Phones))
	pprof.Do(context.Background(), labels, func(context.Context) {
		sum, err = e.Run(workers)
	})
	wall := time.Since(start)
	runtime.ReadMemStats(&ms1)
	if err != nil {
		return fleet.Summary{}, nil, 0, benchMem{}, err
	}
	mem := benchMem{
		allocs:   ms1.Mallocs - ms0.Mallocs,
		bytes:    ms1.TotalAlloc - ms0.TotalAlloc,
		peakHeap: ms1.HeapSys,
	}
	return sum, e, wall, mem, nil
}

// exportTraces writes the engine's retained traces as Chrome trace-event
// JSON (chrome://tracing / Perfetto format). With the flight recorder on,
// its derived series and alerts ride along as counter tracks and instant
// markers under a "timeline" pseudo-process, aligned with the span rows.
func exportTraces(e *fleet.Engine, path string, rep *timeline.Report) error {
	tr := e.World().Tracer()
	if tr == nil {
		return fmt.Errorf("run was not traced (pass -trace)")
	}
	var extras tracing.ChromeExtras
	if rep != nil {
		extras = timeline.ChromeExtras(*rep)
	}
	data, err := tracing.ChromeJSONWithExtras(tr.Store().Traces(), extras)
	if err != nil {
		return err
	}
	return writeFile(path, append(data, '\n'))
}

// printSummary renders the human-readable report.
func printSummary(s fleet.Summary, wall time.Duration) {
	fmt.Printf("fleet %s: %d phones, %d lanes, %.0fs virtual in %s wall\n",
		s.Name, s.Phones, s.Lanes, s.VirtualSeconds, wall.Round(time.Millisecond))
	fmt.Printf("  queries   %d submitted (%.2f/s virtual), %d items delivered, %d failovers, %d expired, %d rejected\n",
		s.QueriesSubmitted, s.QueriesPerSec, s.ItemsDelivered, s.Failovers, s.Expired, s.Rejected)
	mechs := make([]string, 0, len(s.Latency))
	for m := range s.Latency {
		mechs = append(mechs, m)
	}
	sort.Strings(mechs)
	for _, m := range mechs {
		l := s.Latency[m]
		fmt.Printf("  latency   %-13s p50 %.1f ms  p90 %.1f ms  p99 %.1f ms  max %.1f ms  (n=%d)\n",
			m, l.P50, l.P90, l.P99, l.Max, l.Count)
	}
	media := make([]string, 0, len(s.Frames))
	for m := range s.Frames {
		media = append(media, m)
	}
	sort.Strings(media)
	for _, m := range media {
		f := s.Frames[m]
		fmt.Printf("  frames    %-6s sent %d delivered %d dropped %d\n", m, f.Sent, f.Delivered, f.Dropped)
	}
	classes := make([]string, 0, len(s.Energy))
	for c := range s.Energy {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		e := s.Energy[c]
		fmt.Printf("  energy    %-10s %d phones, %.2f J mean\n", c, e.Phones, e.MeanJoules)
	}
	if s.CacheMux != nil {
		c := s.CacheMux
		fmt.Printf("  cache     %d hits / %d misses (ratio %.2f), %d refreshes, %d promotions\n",
			c.Hits, c.Misses, c.HitRatio, c.Refreshes, c.Promotions)
		fmt.Printf("  mux       %d attached, %d detached, %d shared streams\n",
			c.MuxAttached, c.MuxDetached, c.SharedStreams)
	}
	if s.QoS != nil {
		q := s.QoS
		fmt.Printf("  qos       %d admitted, %d deferred (%d released), %d degraded, %d rejected, %d shed; p99 first item %.1f ms\n",
			q.Admitted, q.Deferred, q.Released, q.Degraded, q.Rejected, q.Shed, q.P99FirstItemMs)
	}
	if s.Audit != nil {
		fmt.Printf("  audit     %d queries tracked, %d checks, %d timers live, %d violations\n",
			s.Audit.Queries, s.Audit.Checks, s.Audit.LiveTimers, len(s.Audit.Violations))
	}
	if s.Chaos != nil {
		fmt.Printf("  chaos     %s profile: %d faults injected, %d/%d switches attributed (%d unattributed)\n",
			s.Chaos.Profile, s.Chaos.Faults, s.Chaos.Attributed, s.Chaos.Switches, s.Chaos.Unattributed)
	}
	if s.Trace != nil {
		fmt.Printf("  tracing   %d traces started, %d retained (%d spans), %d sampled out, %d/%d traces/spans dropped\n",
			s.Trace.Started, s.Trace.Retained, s.Trace.Spans, s.Trace.SampledOut,
			s.Trace.DroppedTraces, s.Trace.DroppedSpans)
	}
	if s.Timeline != nil {
		fmt.Printf("  %s\n", timeline.Describe(*s.Timeline))
	}
	fmt.Printf("  executor  %d events in %d batches, %d lane groups, %d barriers\n",
		s.Events, s.Batches, s.Groups, s.Barriers)
}

// benchDoc is the BENCH_*.json artifact shape: one file, one bench name,
// one entry per scenario run.
type benchDoc struct {
	Bench string     `json:"bench"`
	Runs  []benchRun `json:"runs"`
}

type benchRun struct {
	Phones         int     `json:"phones"`
	VirtualSeconds float64 `json:"virtual_seconds"`
	WallMS         float64 `json:"wall_ms"`
	Events         uint64  `json:"events"`
	EventsPerSec   float64 `json:"events_per_wall_sec"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerEvent  float64 `json:"bytes_per_event"`
	PeakHeapBytes  uint64  `json:"peak_heap_bytes"`
	Queries        int64   `json:"queries_submitted"`
	Items          int64   `json:"items_delivered"`
	Failovers      int64   `json:"failovers"`
}

func benchEntry(s fleet.Summary, wall time.Duration, mem benchMem) benchRun {
	r := benchRun{
		Phones:         s.Phones,
		VirtualSeconds: s.VirtualSeconds,
		WallMS:         float64(wall) / float64(time.Millisecond),
		Events:         s.Events,
		PeakHeapBytes:  mem.peakHeap,
		Queries:        s.QueriesSubmitted,
		Items:          s.ItemsDelivered,
		Failovers:      s.Failovers,
	}
	if wall > 0 {
		r.EventsPerSec = float64(s.Events) / wall.Seconds()
	}
	if s.Events > 0 {
		r.AllocsPerEvent = float64(mem.allocs) / float64(s.Events)
		r.BytesPerEvent = float64(mem.bytes) / float64(s.Events)
	}
	return r
}

// benchGoLine renders one run as a Go testing benchmark result line, the
// format benchstat consumes, so repeated `make load-bench COUNT=n` sweeps
// can be compared statistically.
func benchGoLine(r benchRun) string {
	return fmt.Sprintf("BenchmarkFleet/phones=%d 1 %d ns/op %.1f allocs/event %.1f bytes/event %.0f events/wall-sec\n",
		r.Phones, int64(r.WallMS*1e6), r.AllocsPerEvent, r.BytesPerEvent, r.EventsPerSec)
}

// runSweep runs the scenario at each population size and reports how
// wall-clock scales with fleet size.
func runSweep(list string, specFor func(int) fleet.Spec, workers int, benchOut, benchGo string) error {
	var counts []int
	for _, part := range strings.Split(list, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return fmt.Errorf("bad -sweep entry %q", part)
		}
		counts = append(counts, n)
	}
	doc := benchDoc{Bench: "fleet"}
	for _, n := range counts {
		sum, _, wall, mem, err := runOne(specFor(n), workers)
		if err != nil {
			return fmt.Errorf("sweep %d phones: %w", n, err)
		}
		printSummary(sum, wall)
		doc.Runs = append(doc.Runs, benchEntry(sum, wall, mem))
	}
	if benchOut != "" {
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := writeFile(benchOut, append(data, '\n')); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "bench timings written to", benchOut)
	}
	if benchGo != "" {
		var lines []byte
		for _, r := range doc.Runs {
			lines = append(lines, benchGoLine(r)...)
		}
		if err := appendFile(benchGo, lines); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "benchstat lines appended to", benchGo)
	}
	return nil
}

// appendFile appends data, creating the file and parent directories as
// needed (repeated sweeps accumulate benchstat samples in one file).
func appendFile(path string, data []byte) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("create %s: %w", dir, err)
		}
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("open %s: %w", path, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("append %s: %w", path, err)
	}
	return f.Close()
}

// writeFile writes data, creating parent directories as needed.
func writeFile(path string, data []byte) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("create %s: %w", dir, err)
		}
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	return nil
}
