package main

import (
	"strings"
	"testing"
	"time"
)

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name       string
		phones     int
		duration   time.Duration
		workers    int
		qosRate    float64
		overload   float64
		audit      bool
		sweep      string
		benchOut   string
		timeline   bool
		tlInterval time.Duration
		wantErr    string // "" = valid
	}{
		{name: "defaults", phones: 1000, duration: 10 * time.Minute},
		{name: "explicit workers", phones: 10, duration: time.Minute, workers: 8},
		{name: "qos overload run", phones: 10, duration: time.Minute, qosRate: 0.5, overload: 1},
		{name: "zero phones", phones: 0, duration: time.Minute, wantErr: "-phones"},
		{name: "negative phones", phones: -5, duration: time.Minute, wantErr: "-phones"},
		{name: "zero duration", phones: 10, wantErr: "-duration"},
		{name: "negative duration", phones: 10, duration: -time.Second, wantErr: "-duration"},
		{name: "negative workers", phones: 10, duration: time.Minute, workers: -1, wantErr: "-workers"},
		{name: "negative qos rate", phones: 10, duration: time.Minute, qosRate: -0.1, wantErr: "-qos-rate"},
		{name: "overload above one", phones: 10, duration: time.Minute, overload: 1.5, wantErr: "-overload"},
		{name: "negative overload", phones: 10, duration: time.Minute, overload: -0.2, wantErr: "-overload"},
		{name: "audited run", phones: 10, duration: time.Minute, audit: true},
		{name: "audited sweep", phones: 10, duration: time.Minute, audit: true, sweep: "10,20", wantErr: "-audit"},
		{name: "audited bench", phones: 10, duration: time.Minute, audit: true, benchOut: "BENCH.json", wantErr: "-audit"},
		{name: "unaudited sweep", phones: 10, duration: time.Minute, sweep: "10,20"},
		{name: "timeline run", phones: 10, duration: time.Minute, timeline: true, tlInterval: 10 * time.Second},
		{name: "timeline zero interval", phones: 10, duration: time.Minute, timeline: true, wantErr: "-timeline-interval"},
		{name: "timeline negative interval", phones: 10, duration: time.Minute, timeline: true, tlInterval: -time.Second, wantErr: "-timeline-interval"},
		{name: "timeline off ignores interval", phones: 10, duration: time.Minute, tlInterval: -time.Second},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateFlags(tc.phones, tc.duration, tc.workers, tc.qosRate, tc.overload, tc.audit, tc.sweep, tc.benchOut, tc.timeline, tc.tlInterval)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validateFlags: unexpected error %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validateFlags accepted invalid input")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not name the offending flag %q", err, tc.wantErr)
			}
		})
	}
}
