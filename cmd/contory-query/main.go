// Command contory-query parses a Contory context query and executes it on
// a small simulated testbed: one phone with a BT-GPS receiver, two peers in
// an ad hoc WiFi line publishing sensor values, and a context
// infrastructure.
//
// Usage:
//
//	contory-query -q "SELECT temperature FROM adHocNetwork(all,2) DURATION 2 min EVERY 20 sec"
//	contory-query -q "SELECT location FROM intSensor DURATION 30 sec EVERY 5 sec"
//	contory-query -parse-only -q "SELECT wind WHERE accuracy<=0.5 DURATION 1 hour EVENT AVG(wind)>15"
//
// Peers publish temperature (14.5 °C, 1 hop) and wind (8.2 kn, 2 hops);
// the infrastructure stores a weather report. -run bounds the virtual time
// simulated (default: the query's DURATION plus slack).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"contory"
)

func main() {
	qText := flag.String("q", "", "context query text (required)")
	runFor := flag.Duration("run", 0, "virtual time to simulate (default: DURATION + 30s)")
	parseOnly := flag.Bool("parse-only", false, "only parse and print the canonical query")
	seed := flag.Int64("seed", 42, "deterministic seed")
	flag.Parse()
	if err := run(*qText, *runFor, *parseOnly, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "contory-query:", err)
		os.Exit(1)
	}
}

func run(qText string, runFor time.Duration, parseOnly bool, seed int64) error {
	if qText == "" {
		return fmt.Errorf("missing -q; try: -q \"SELECT temperature FROM adHocNetwork(all,2) DURATION 1 min EVERY 20 sec\"")
	}
	q, err := contory.ParseQuery(qText)
	if err != nil {
		return err
	}
	fmt.Println("parsed query:")
	fmt.Println(indent(q.String()))
	fmt.Printf("mode: %s\n\n", q.Mode())
	if parseOnly {
		return nil
	}

	w, err := contory.NewWorld(seed)
	if err != nil {
		return err
	}
	phone, err := w.AddPhone(contory.PhoneConfig{ID: "phone", GPS: &contory.Fix{Lat: 60.16, Lon: 24.93, SpeedKn: 5}})
	if err != nil {
		return err
	}
	near, err := w.AddPhone(contory.PhoneConfig{ID: "near"})
	if err != nil {
		return err
	}
	far, err := w.AddPhone(contory.PhoneConfig{ID: "far", NoInfra: true})
	if err != nil {
		return err
	}
	for _, l := range [][3]string{
		{"phone", "near", "wifi"}, {"near", "far", "wifi"}, {"phone", "near", "bt"},
	} {
		if err := w.Link(l[0], l[1], l[2]); err != nil {
			return err
		}
	}
	near.PublishTag(contory.TypeTemperature, 14.5)
	far.PublishTag(contory.TypeWind, 8.2)
	if err := near.ReportWeather(contory.TypeTemperature, 14.5); err != nil {
		return err
	}
	w.Run(30 * time.Second)

	count := 0
	t0 := w.Now()
	cli := contory.ClientFuncs{
		OnItem: func(it contory.Item) {
			count++
			fmt.Printf("  %6.1fs  %s\n", w.Now().Sub(t0).Seconds(), it)
		},
		OnError: func(msg string) { fmt.Println("  error:", msg) },
	}
	sub, err := phone.Factory.ProcessCxtQuery(q, cli)
	if err != nil {
		return err
	}
	mech, _ := sub.Mechanism()
	fmt.Printf("assigned %s via %s\nitems:\n", sub.ID(), mech)

	if runFor <= 0 {
		runFor = q.Duration.Time + 30*time.Second
		if q.Duration.IsSamples() {
			runFor = 5 * time.Minute
		}
	}
	w.Run(runFor)
	fmt.Printf("\n%d item(s) in %v of virtual time\n", count, runFor)
	return nil
}

func indent(s string) string {
	out := "  "
	for _, r := range s {
		out += string(r)
		if r == '\n' {
			out += "  "
		}
	}
	return out
}
