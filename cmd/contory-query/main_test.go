package main

import "testing"

func TestRunParseOnly(t *testing.T) {
	err := run("SELECT temperature FROM adHocNetwork(all,2) DURATION 1 min EVERY 20 sec", 0, true, 42)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunEndToEnd(t *testing.T) {
	err := run("SELECT temperature FROM adHocNetwork(all,1) DURATION 1 min EVERY 20 sec", 0, false, 42)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", 0, false, 42); err == nil {
		t.Fatal("missing query accepted")
	}
	if err := run("garbage", 0, false, 42); err == nil {
		t.Fatal("unparsable query accepted")
	}
}
