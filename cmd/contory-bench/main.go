// Command contory-bench regenerates the tables and figures of the paper's
// evaluation (§6.1) on the simulated testbed.
//
// Usage:
//
//	contory-bench -exp all            # everything
//	contory-bench -exp table1         # Table 1 (latency)
//	contory-bench -exp table2         # Table 2 (energy)
//	contory-bench -exp baseline       # operating-mode power
//	contory-bench -exp fig4           # Fig. 4 power trace (UMTS)
//	contory-bench -exp fig5           # Fig. 5 GPS failover
//	contory-bench -exp merge          # §4.3 query-merging example
//	contory-bench -exp ablation       # design-choice ablations
//	contory-bench -exp fieldtrial     # §3 field-trial findings
//	contory-bench -exp hopsweep       # extension: WiFi hops vs UMTS crossovers
//
// Flags -rounds and -seed control repetition count and determinism.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"contory/internal/energy"
	"contory/internal/experiments"
	"contory/internal/tracing"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1|table2|baseline|fig4|fig5|merge|ablation|fieldtrial|hopsweep|all")
	rounds := flag.Int("rounds", 10, "repetitions per measurement")
	seed := flag.Int64("seed", 42, "deterministic seed")
	traceOut := flag.String("trace-out", "", "write fig4/fig5 power samples as CSV to this file")
	stats := flag.Bool("stats", false, "dump a metrics snapshot of the instrumented reference workload")
	statsOut := flag.String("stats-out", "", "write the reference-workload snapshot as JSON (e.g. BENCH_metrics.json) for cross-PR diffing")
	trace := flag.Bool("trace", false, "run the reference workload traced and print span trees plus latency attribution")
	traceSmp := flag.Int("trace-sample", 0, "keep one trace in N by trace-id residue (<=1 keeps all)")
	flag.Parse()
	if err := run(*exp, *rounds, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "contory-bench:", err)
		os.Exit(1)
	}
	if *traceOut != "" {
		if err := writeTraces(*traceOut, *exp, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "contory-bench:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "trace CSV written to", *traceOut)
	}
	if *stats || *statsOut != "" {
		if err := writeStats(*statsOut, *stats, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "contory-bench:", err)
			os.Exit(1)
		}
	}
	if *trace {
		if err := showSpanTrees(*seed, *traceSmp); err != nil {
			fmt.Fprintln(os.Stderr, "contory-bench:", err)
			os.Exit(1)
		}
	}
}

// writeFile writes an artifact, creating parent directories as needed.
// Callers pass paths like bench/BENCH_metrics.json; creating the directory
// here means the first run does not fail on a missing bench/ dir.
func writeFile(path string, data []byte) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, data, 0o644)
}

// showSpanTrees runs the reference workload with tracing enabled and prints
// the query span trees plus the latency-attribution table.
func showSpanTrees(seed int64, sample int) error {
	traces, stats, err := experiments.TraceRun(seed, sample)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	fmt.Println("query span trees (reference workload):")
	fmt.Print(tracing.RenderText(traces, traceTreeLimit))
	rep := tracing.BuildAttribution(traces, stats, traceTreeLimit)
	fmt.Println("\nlatency attribution:")
	fmt.Print(tracing.RenderAttribution(rep))
	return nil
}

// traceTreeLimit caps how many span trees -trace prints.
const traceTreeLimit = 5

// writeStats runs the instrumented reference workload and dumps its metrics
// snapshot: text to stdout when show is set, JSON to path when given.
func writeStats(path string, show bool, seed int64) error {
	snap, err := experiments.MetricsRun(seed)
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	if show {
		fmt.Println("metrics snapshot (reference workload):")
		fmt.Print(snap.String())
	}
	if path != "" {
		data, err := snap.MarshalJSONIndent()
		if err != nil {
			return fmt.Errorf("stats json: %w", err)
		}
		if err := writeFile(path, append(data, '\n')); err != nil {
			return fmt.Errorf("write stats: %w", err)
		}
		fmt.Fprintln(os.Stderr, "metrics JSON written to", path)
	}
	return nil
}

// writeTraces re-runs the figure experiments and dumps their multimeter
// samples as CSV (seconds, milliwatts, figure) for external plotting.
func writeTraces(path, exp string, seed int64) error {
	var b strings.Builder
	b.WriteString("figure,seconds,milliwatts\n")
	dump := func(fig string, samples []energy.Sample) {
		for _, s := range samples {
			fmt.Fprintf(&b, "%s,%.1f,%.2f\n", fig, s.Since.Seconds(), float64(s.Power))
		}
	}
	if exp == "all" || exp == "fig4" {
		r, err := experiments.Figure4(seed)
		if err != nil {
			return fmt.Errorf("fig4 trace: %w", err)
		}
		dump("fig4", r.Samples)
	}
	if exp == "all" || exp == "fig5" {
		r, err := experiments.Figure5(seed)
		if err != nil {
			return fmt.Errorf("fig5 trace: %w", err)
		}
		dump("fig5", r.Samples)
	}
	if err := writeFile(path, []byte(b.String())); err != nil {
		return fmt.Errorf("write traces: %w", err)
	}
	return nil
}

func run(exp string, rounds int, seed int64) error {
	type job struct {
		name string
		fn   func() (fmt.Stringer, error)
	}
	jobs := []job{
		{"table1", func() (fmt.Stringer, error) {
			r, err := experiments.Table1(rounds, seed)
			return r, err
		}},
		{"table2", func() (fmt.Stringer, error) {
			r, err := experiments.Table2(rounds, seed)
			return r, err
		}},
		{"baseline", func() (fmt.Stringer, error) {
			r, err := experiments.BaselinePower(seed)
			return r, err
		}},
		{"fig4", func() (fmt.Stringer, error) {
			r, err := experiments.Figure4(seed)
			return r, err
		}},
		{"fig5", func() (fmt.Stringer, error) {
			r, err := experiments.Figure5(seed)
			return r, err
		}},
		{"merge", func() (fmt.Stringer, error) {
			r, err := experiments.MergeDemo()
			return r, err
		}},
		{"ablation", func() (fmt.Stringer, error) {
			r, err := experiments.Ablation(seed)
			return r, err
		}},
		{"fieldtrial", func() (fmt.Stringer, error) {
			r, err := experiments.FieldTrial(2, seed)
			return r, err
		}},
		{"hopsweep", func() (fmt.Stringer, error) {
			r, err := experiments.HopSweep(5, rounds, seed)
			return r, err
		}},
	}
	ran := false
	for _, j := range jobs {
		if exp != "all" && exp != j.name {
			continue
		}
		ran = true
		res, err := j.fn()
		if err != nil {
			return fmt.Errorf("%s: %w", j.name, err)
		}
		fmt.Println(res.String())
		fmt.Println()
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
