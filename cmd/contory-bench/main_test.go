package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunMergeExperiment(t *testing.T) {
	if err := run("merge", 1, 42); err != nil {
		t.Fatal(err)
	}
}

func TestRunBaselineExperiment(t *testing.T) {
	if err := run("baseline", 1, 42); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nonsense", 1, 42); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestWriteTraces(t *testing.T) {
	path := t.TempDir() + "/traces.csv"
	if err := writeTraces(path, "fig5", 42); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := string(raw)
	if !strings.HasPrefix(s, "figure,seconds,milliwatts\n") {
		t.Fatalf("header missing: %q", s[:40])
	}
	if !strings.Contains(s, "fig5,") {
		t.Fatal("no fig5 samples")
	}
}

// TestWriteStatsCreatesParentDirs is the regression test for -stats-out
// paths under directories that do not exist yet (e.g. bench/BENCH.json on a
// fresh checkout): writeStats must create them instead of failing.
func TestWriteStatsCreatesParentDirs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "artifacts", "nested", "BENCH_metrics.json")
	if err := writeStats(path, false, 1); err != nil {
		t.Fatalf("writeStats: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("stats-out is not valid JSON: %v", err)
	}
	if _, ok := doc["counters"]; !ok {
		t.Fatal("stats-out JSON has no counters section")
	}
}

// TestWriteStatsReportsWriteError makes sure an unwritable destination
// surfaces as an error (main turns it into a non-zero exit) instead of
// being swallowed.
func TestWriteStatsReportsWriteError(t *testing.T) {
	blocker := filepath.Join(t.TempDir(), "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	// The parent "directory" is a regular file: MkdirAll must fail loudly.
	path := filepath.Join(blocker, "sub", "BENCH_metrics.json")
	if err := writeStats(path, false, 1); err == nil {
		t.Fatal("writeStats silently succeeded writing under a regular file")
	}
}
