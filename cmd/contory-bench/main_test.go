package main

import (
	"os"
	"strings"
	"testing"
)

func TestRunMergeExperiment(t *testing.T) {
	if err := run("merge", 1, 42); err != nil {
		t.Fatal(err)
	}
}

func TestRunBaselineExperiment(t *testing.T) {
	if err := run("baseline", 1, 42); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nonsense", 1, 42); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestWriteTraces(t *testing.T) {
	path := t.TempDir() + "/traces.csv"
	if err := writeTraces(path, "fig5", 42); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := string(raw)
	if !strings.HasPrefix(s, "figure,seconds,milliwatts\n") {
		t.Fatalf("header missing: %q", s[:40])
	}
	if !strings.Contains(s, "fig5,") {
		t.Fatal("no fig5 samples")
	}
}
