// Command contory-sim runs a scripted multi-boat sailing simulation (the
// paper's DYNAMOS scenario): a fleet of boats with BT-GPS receivers sails a
// regatta course, reporting locations to the infrastructure, publishing
// weather observations in the ad hoc network, and surviving GPS failures
// through Contory's dynamic strategy switching.
//
// Usage:
//
//	contory-sim -boats 4 -duration 30m -fail-gps 300s
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"contory"
	"contory/internal/infra"
	"contory/internal/timeline"
	"contory/internal/tracing"
)

func main() {
	boats := flag.Int("boats", 4, "number of boats")
	duration := flag.Duration("duration", 30*time.Minute, "virtual race duration")
	failGPS := flag.Duration("fail-gps", 5*time.Minute, "when boat-1's GPS fails (0 = never)")
	seed := flag.Int64("seed", 42, "deterministic seed")
	stats := flag.Bool("stats", false, "dump the middleware metrics snapshot after the race")
	trace := flag.Bool("trace", false, "trace every query and print span trees plus latency attribution after the race")
	traceSmp := flag.Int("trace-sample", 0, "keep one trace in N by trace-id residue (<=1 keeps all)")
	audit := flag.Bool("audit", false, "run the conservation-law auditor over the race (violations fail the run)")
	tlOn := flag.Bool("timeline", false, "record a periodic metric timeline (flight recorder) over the race")
	tlEvery := flag.Duration("timeline-interval", 10*time.Second, "virtual sampling interval for -timeline")
	tlSLO := flag.String("slo", "", "comma-separated SLOs to evaluate, e.g. 'p99_first_item_ms<5000' (implies -timeline)")
	tlOut := flag.String("timeline-out", "", "write the timeline report JSON to this file (implies -timeline)")
	flag.Parse()
	if *tlSLO != "" || *tlOut != "" {
		*tlOn = true
	}
	if *tlOn && *tlEvery <= 0 {
		fmt.Fprintf(os.Stderr, "contory-sim: -timeline-interval must be positive, got %s\n", *tlEvery)
		os.Exit(1)
	}
	tl := timelineOpts{on: *tlOn, every: *tlEvery, slos: *tlSLO, out: *tlOut}
	if err := run(*boats, *duration, *failGPS, *seed, *stats, *trace, *traceSmp, *audit, tl); err != nil {
		fmt.Fprintln(os.Stderr, "contory-sim:", err)
		os.Exit(1)
	}
}

// timelineOpts bundles the flight-recorder flags so run's signature stays
// readable.
type timelineOpts struct {
	on    bool
	every time.Duration
	slos  string
	out   string
}

func run(boats int, duration, failGPS time.Duration, seed int64, stats, trace bool, traceSmp int, audit bool, tl timelineOpts) error {
	if boats < 2 {
		boats = 2
	}
	wcfg := contory.WorldConfig{Seed: seed}
	if trace {
		wcfg.Trace = &tracing.Config{Sample: traceSmp}
	}
	if tl.on {
		slos, err := timeline.ParseSLOList(tl.slos)
		if err != nil {
			return err
		}
		wcfg.Timeline = &timeline.Config{Interval: tl.every, SLOs: slos}
	}
	var auditor *contory.Auditor
	if audit {
		auditor = contory.NewAuditor()
		wcfg.FactoryOptions = append(wcfg.FactoryOptions, contory.WithAudit(auditor))
	}
	w, err := contory.NewWorldConfig(wcfg)
	if err != nil {
		return err
	}
	if auditor != nil {
		w.AttachAudit(auditor)
	}
	// Regatta course: three checkpoints heading north-east.
	course := []infra.Checkpoint{
		{Lat: 60.15, Lon: 24.95, Radius: 0.01},
		{Lat: 60.20, Lon: 25.00, Radius: 0.01},
		{Lat: 60.25, Lon: 25.05, Radius: 0.01},
	}
	regatta := infra.NewRegatta(course)
	w.Infrastructure().AttachRegatta(regatta)
	regatta.OnUpdate(func(st []infra.Standing) {
		fmt.Printf("%8s  classification: ", clock(w))
		for i, s := range st {
			if i > 0 {
				fmt.Print(" | ")
			}
			fmt.Printf("%s cp=%d", s.Boat, s.Checkpoints)
		}
		fmt.Println()
	})

	// Boats start staggered south-west of the course, sailing NE at
	// slightly different speeds.
	var fleet []*contory.Phone
	for i := 0; i < boats; i++ {
		id := fmt.Sprintf("boat-%d", i+1)
		fix := contory.Fix{Lat: 60.10 - 0.002*float64(i), Lon: 24.90, SpeedKn: 5 + float64(i)}
		p, err := w.AddPhone(contory.PhoneConfig{ID: id, GPS: &fix})
		if err != nil {
			return err
		}
		fleet = append(fleet, p)
		if i > 0 {
			if err := w.Link(id, fleet[i-1].ID(), "wifi"); err != nil {
				return err
			}
		}
	}

	// Each boat runs a periodic location query on itself and reports to
	// the infrastructure; boat speed determines course progress.
	for i, p := range fleet {
		i, p := i, p
		q := contory.MustParseQuery("SELECT location DURATION 12 hour EVERY 30 sec")
		cli := contory.ClientFuncs{OnItem: func(it contory.Item) {
			if fix, ok := it.Value.(contory.Fix); ok {
				_ = p.ReportLocation(fix)
			}
		}}
		if _, err := p.Factory.ProcessCxtQuery(q, cli); err != nil {
			return err
		}
		// Advance the simulated GPS along the course.
		gps := w.GPSOf(p.ID())
		speed := 0.002 + 0.0005*float64(i) // degrees per 30-second tick
		stepEvery := 30 * time.Second
		var step func()
		step = func() {
			f := gps.Fix()
			f.Lat += speed
			f.Lon += speed
			gps.SetFix(f)
			scheduleAfter(w, stepEvery, step)
		}
		scheduleAfter(w, stepEvery, step)
		// Boats also publish temperature observations in the ad hoc net.
		p.PublishTag(contory.TypeTemperature, 14.0+float64(i))
	}

	// GPS failure injection on boat-1.
	if failGPS > 0 {
		scheduleAfter(w, failGPS, func() {
			fmt.Printf("%8s  !! boat-1 GPS fails\n", clock(w))
			w.GPSOf("boat-1").SetFailed(true)
		})
		scheduleAfter(w, failGPS+4*time.Minute, func() {
			fmt.Printf("%8s  !! boat-1 GPS recovers\n", clock(w))
			w.GPSOf("boat-1").SetFailed(false)
		})
	}

	fmt.Printf("race: %d boats, %v, GPS failure at %v\n", boats, duration, failGPS)
	w.Run(duration)

	fmt.Println("\nfinal classification:")
	for i, s := range regatta.Classification() {
		fmt.Printf("  %d. %-8s checkpoints=%d avg speed=%.1f kn\n",
			i+1, s.Boat, s.Checkpoints, s.AvgSpeedKn)
	}
	sw := fleet[0].Factory.Switches()
	if len(sw) > 0 {
		fmt.Println("\nboat-1 strategy switches:")
		for _, s := range sw {
			fmt.Printf("  %8s  %s → %s (%s)\n", s.At.Format("15:04:05"), s.From, s.To, s.Reason)
		}
	}
	if stats {
		fmt.Println("\nmetrics snapshot:")
		fmt.Print(w.Metrics().Snapshot().String())
	}
	if tr := w.Tracer(); tr != nil {
		tr.Flush()
		traces := tr.Store().Traces()
		fmt.Println("\nquery span trees (first", traceTreeLimit, "traces):")
		fmt.Print(tracing.RenderText(traces, traceTreeLimit))
		rep := tracing.BuildAttribution(traces, tr.Stats(), traceTreeLimit)
		fmt.Println("\nlatency attribution:")
		fmt.Print(tracing.RenderAttribution(rep))
	}
	if rec := w.Timeline(); rec != nil {
		rec.Stop()
		if auditor != nil {
			rec.AttributeAudit(auditor.Report().Violations)
		}
		rep := rec.Report()
		fmt.Println()
		fmt.Print(timeline.RenderText(rep))
		if tl.out != "" {
			data, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				return err
			}
			if err := writeFile(tl.out, append(data, '\n')); err != nil {
				return err
			}
			fmt.Fprintln(os.Stderr, "timeline report written to", tl.out)
		}
	}
	if auditor != nil {
		rep := auditor.Report()
		fmt.Printf("\naudit: %d queries tracked, %d checks, %d violations\n",
			rep.Queries, rep.Checks, len(rep.Violations))
		if len(rep.Violations) > 0 {
			for _, v := range rep.Violations {
				fmt.Println("  violation:", v)
			}
			return fmt.Errorf("audit found %d invariant violations", len(rep.Violations))
		}
	}
	return nil
}

// writeFile writes data to path, creating parent directories as needed.
func writeFile(path string, data []byte) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, data, 0o644)
}

// traceTreeLimit caps how many span trees -trace prints.
const traceTreeLimit = 5

func clock(w *contory.World) string { return w.Now().Format("15:04:05") }

func scheduleAfter(w *contory.World, d time.Duration, fn func()) {
	w.After(d, fn)
}
