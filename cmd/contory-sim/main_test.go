package main

import (
	"testing"
	"time"
)

func TestRunShortRace(t *testing.T) {
	tl := timelineOpts{on: true, every: 30 * time.Second, slos: "p99_first_item_ms<5000"}
	if err := run(3, 10*time.Minute, 2*time.Minute, 42, true, true, 0, true, tl); err != nil {
		t.Fatal(err)
	}
}

func TestRunMinimumBoats(t *testing.T) {
	if err := run(0, 5*time.Minute, 0, 7, false, false, 0, false, timelineOpts{}); err != nil {
		t.Fatal(err)
	}
}
