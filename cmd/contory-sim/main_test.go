package main

import (
	"testing"
	"time"
)

func TestRunShortRace(t *testing.T) {
	if err := run(3, 10*time.Minute, 2*time.Minute, 42, true, true, 0, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunMinimumBoats(t *testing.T) {
	if err := run(0, 5*time.Minute, 0, 7, false, false, 0, false); err != nil {
		t.Fatal(err)
	}
}
